module Engine = Softstate_sim.Engine
module Net = Softstate_net
module Rng = Softstate_util.Rng
module Stats = Softstate_util.Stats
module Sched = Softstate_sched.Scheduler

type loss_spec =
  | Bernoulli of float
  | Gilbert_elliott of {
      p_good_to_bad : float;
      p_bad_to_good : float;
      loss_good : float;
      loss_bad : float;
    }

let make_loss = function
  | Bernoulli p -> Net.Loss.bernoulli p
  | Gilbert_elliott { p_good_to_bad; p_bad_to_good; loss_good; loss_bad } ->
      Net.Loss.gilbert_elliott ~p_good_to_bad ~p_bad_to_good ~loss_good
        ~loss_bad

let loss_mean spec = Net.Loss.mean_rate (make_loss spec)

type protocol_spec =
  | Open_loop of { mu_data_kbps : float }
  | Two_queue of { mu_hot_kbps : float; mu_cold_kbps : float }
  | Feedback of {
      mu_hot_kbps : float;
      mu_cold_kbps : float;
      mu_fb_kbps : float;
      nack_bits : int;
      fb_lossy : bool;
    }
  | Multicast of {
      receivers : int;
      mu_hot_kbps : float;
      mu_cold_kbps : float;
      mu_fb_kbps : float;
      nack_bits : int;
      suppression : bool;
      nack_slot : float;
    }

type topology_spec =
  | Single_hop
  | Star of { leaves : int }
  | Chain of { hops : int }
  | Kary_tree of { arity : int; depth : int }
  | Random_graph of { nodes : int; edge_prob : float }

type config = {
  seed : int;
  duration : float;
  lambda_kbps : float;
  size_bits : int;
  death : Base.death_spec;
  expiry : Base.expiry_spec;
  update_fraction : float;
  arrival : Workload.shape;
  loss : loss_spec;
  protocol : protocol_spec;
  topology : topology_spec;
  faults : Net.Fault.spec list;
  sched : Sched.algorithm;
  empty_policy : Consistency.empty_policy;
  record_series : bool;
  obs : Softstate_obs.Obs.t option;
}

let default =
  { seed = 1; duration = 2000.0; lambda_kbps = 15.0; size_bits = 1000;
    death = Base.Lifetime_fixed 30.0; expiry = Base.No_expiry;
    update_fraction = 0.0;
    arrival = Workload.Poisson;
    loss = Bernoulli 0.1;
    protocol = Open_loop { mu_data_kbps = 45.0 };
    topology = Single_hop; faults = [];
    sched = Sched.Stride;
    empty_policy = Consistency.Empty_is_consistent; record_series = false;
    obs = None }

type result = {
  avg_consistency : float;
  final_consistency : float;
  latency_mean : float;
  latency_ci95 : float;
  deliveries : int;
  transmissions : int;
  redundant_fraction : float;
  sent_hot : int;
  sent_cold : int;
  nacks_wanted : int;
  nacks_sent : int;
  nacks_suppressed : int;
  nacks_delivered : int;
  nack_overflows : int;
  reheats : int;
  false_expiries : int;
  stale_purged : int;
  live_at_end : int;
  utilisation : float;
  fault_transitions : int;
  fault_drops : int;
  packets_sent : int;
  packets_delivered : int;
  packets_dropped : int;
  series : (float * float) list;
}

let kbps x = x *. 1000.0

let data_rate_kbps = function
  | Open_loop { mu_data_kbps } -> mu_data_kbps
  | Two_queue { mu_hot_kbps; mu_cold_kbps }
  | Feedback { mu_hot_kbps; mu_cold_kbps; _ }
  | Multicast { mu_hot_kbps; mu_cold_kbps; _ } ->
      mu_hot_kbps +. mu_cold_kbps

let run config =
  if config.duration <= 0.0 then
    invalid_arg "Experiment.run: duration must be positive";
  let receivers =
    match config.protocol with Multicast { receivers; _ } -> receivers | _ -> 1
  in
  let engine = Engine.create () in
  let rng = Rng.create config.seed in
  let workload =
    Workload.of_kbps ~update_fraction:config.update_fraction
      ~shape:config.arrival ~lambda_kbps:config.lambda_kbps
      ~size_bits:config.size_bits ()
  in
  let tracker =
    Consistency.create ~empty_policy:config.empty_policy
      ~record_series:config.record_series ~receivers ~now:0.0 ()
  in
  let base =
    Base.create ~engine ~rng:(Rng.split rng) ~workload ~death:config.death
      ~expiry:config.expiry ~receivers ~tracker ()
  in
  let link_rng = Rng.split rng in
  let obs = config.obs in
  (match obs with
  | Some o -> Softstate_obs.Engine_probe.attach ~obs:o engine
  | None -> ());
  (* Topology mode moves the loss processes onto the graph's edges
     (one fresh instance per overlay edge), so the protocol itself
     runs lossless; the extra generator splits happen only here,
     keeping single-hop runs byte-identical to the pre-topology
     code. *)
  let topo =
    match config.topology with
    | Single_hop ->
        if config.faults <> [] then
          invalid_arg "Experiment.run: faults need a topology";
        None
    | spec ->
        let topo_rng = Rng.split rng in
        let edge_loss () = make_loss config.loss in
        let rate_bps = kbps (data_rate_kbps config.protocol) in
        let t =
          match spec with
          | Single_hop -> assert false
          | Star { leaves } ->
              Net.Topology.star ~engine ~rng:topo_rng ?obs ~loss:edge_loss
                ~rate_bps ~leaves ()
          | Chain { hops } ->
              Net.Topology.chain ~engine ~rng:topo_rng ?obs ~loss:edge_loss
                ~rate_bps ~hops ()
          | Kary_tree { arity; depth } ->
              Net.Topology.kary_tree ~engine ~rng:topo_rng ?obs
                ~loss:edge_loss ~rate_bps ~arity ~depth ()
          | Random_graph { nodes; edge_prob } ->
              Net.Topology.random_graph ~engine ~rng:topo_rng ?obs
                ~loss:edge_loss ~rate_bps ~nodes ~edge_prob ()
        in
        (if config.faults <> [] then
           let fault_rng = Rng.split rng in
           Net.Fault.install t
             (Net.Fault.compile ~rng:fault_rng ~until:config.duration t
                config.faults));
        Some t
  in
  let transport = Option.map Net.Topology.transport topo in
  let loss =
    match topo with None -> make_loss config.loss | Some _ -> Net.Loss.never
  in
  (* per-variant plumbing: how to read utilisation, the feedback
     counters and the network packet triple at the end of the run *)
  let no_counters () = (0, 0, 0, 0, 0, 0, 0, 0) in
  let add_stats (s, d, dr) st =
    ( s + st.Net.Link.Stats.fetched,
      d + st.Net.Link.Stats.delivered,
      dr + st.Net.Link.Stats.dropped )
  in
  let utilisation, counters, net =
    match config.protocol with
    | Open_loop { mu_data_kbps } ->
        let p =
          Open_loop.create ~base ~mu_data_bps:(kbps mu_data_kbps) ?obs
            ?transport ~loss ~link_rng ()
        in
        ( (fun ~now -> (Open_loop.unicast p).Net.Transport.u_utilisation ~now),
          no_counters,
          fun () ->
            add_stats (0, 0, 0) ((Open_loop.unicast p).Net.Transport.u_stats ())
        )
    | Two_queue { mu_hot_kbps; mu_cold_kbps } ->
        let p =
          Two_queue.create ~base ~mu_hot_bps:(kbps mu_hot_kbps)
            ~mu_cold_bps:(kbps mu_cold_kbps) ~sched:config.sched ?obs
            ?transport ~loss ~link_rng ()
        in
        ( (fun ~now -> (Two_queue.unicast p).Net.Transport.u_utilisation ~now),
          (fun () ->
            (Two_queue.sent_hot p, Two_queue.sent_cold p, 0, 0, 0, 0, 0, 0)),
          fun () ->
            add_stats (0, 0, 0) ((Two_queue.unicast p).Net.Transport.u_stats ())
        )
    | Feedback { mu_hot_kbps; mu_cold_kbps; mu_fb_kbps; nack_bits; fb_lossy }
      ->
        let fb_loss =
          if fb_lossy && topo = None then make_loss config.loss
          else Net.Loss.never
        in
        let p =
          Feedback.create ~base ~mu_hot_bps:(kbps mu_hot_kbps)
            ~mu_cold_bps:(kbps mu_cold_kbps) ~mu_fb_bps:(kbps mu_fb_kbps)
            ~sched:config.sched ?obs ?transport ~nack_bits ~fb_loss ~loss
            ~link_rng ()
        in
        ( (fun ~now ->
            (Two_queue.unicast (Feedback.sender p)).Net.Transport.u_utilisation
              ~now),
          (fun () ->
            ( Two_queue.sent_hot (Feedback.sender p),
              Two_queue.sent_cold (Feedback.sender p),
              Feedback.nacks_sent p,
              Feedback.nacks_sent p,
              0,
              Feedback.nacks_delivered p,
              Feedback.nacks_dropped_overflow p,
              Feedback.reheats p )),
          fun () ->
            let acc =
              add_stats (0, 0, 0)
                ((Two_queue.unicast (Feedback.sender p)).Net.Transport.u_stats
                   ())
            in
            add_stats acc (Feedback.fb_stats p) )
    | Multicast
        { receivers = _; mu_hot_kbps; mu_cold_kbps; mu_fb_kbps; nack_bits;
          suppression; nack_slot } ->
        (* each receiver gets an independent loss process built from
           the same spec; over a topology the per-link processes do
           the losing and the last hop is clean *)
        let receiver_loss _ =
          match topo with
          | None -> make_loss config.loss
          | Some _ -> Net.Loss.never
        in
        let p =
          Multicast.create ~base ~mu_hot_bps:(kbps mu_hot_kbps)
            ~mu_cold_bps:(kbps mu_cold_kbps) ~mu_fb_bps:(kbps mu_fb_kbps)
            ~sched:config.sched ?obs ?transport ~nack_bits ~suppression
            ~nack_slot ~receiver_loss ~link_rng ()
        in
        ( (fun ~now -> (Multicast.fanout p).Net.Transport.f_utilisation ~now),
          (fun () ->
            ( Two_queue.sent_hot (Multicast.sender p),
              Two_queue.sent_cold (Multicast.sender p),
              Multicast.nacks_wanted p,
              Multicast.nacks_sent p,
              Multicast.nacks_suppressed p,
              Multicast.nacks_delivered p,
              Multicast.nack_overflows p,
              Multicast.reheats p )),
          fun () ->
            let f = Multicast.fanout p in
            let served = f.Net.Transport.f_served () in
            let s, d, dr =
              match topo with
              | None ->
                  (* single-hop channel: each served packet is offered
                     to every subscriber through that subscriber's own
                     loss process, so one service completion stands
                     for [receivers] send-side events *)
                  let losses = ref 0 in
                  for sid = 0 to receivers - 1 do
                    losses := !losses + f.Net.Transport.f_receiver_losses sid
                  done;
                  let offers = served * receivers in
                  (offers, offers - !losses, !losses)
              | Some _ ->
                  (* the root server is lossless; per-edge processes
                     downstream do the losing (counted in the
                     substrate triple) *)
                  (served, served, 0)
            in
            add_stats (s, d, dr) (Multicast.fb_stats p) )
  in
  Base.start base;
  Engine.run ~until:config.duration engine;
  let now = Engine.now engine in
  let latency = Consistency.latency tracker in
  let ( sent_hot, sent_cold, nacks_wanted, nacks_sent, nacks_suppressed,
        nacks_delivered, nack_overflows, reheats ) =
    counters ()
  in
  (* Unified packet triple: head link(s) plus, in topology mode, every
     overlay edge stage. sent >= delivered + dropped; the slack is
     packets still in service at the horizon, and blackholed packets
     are counted separately in [fault_drops]. *)
  let packets_sent, packets_delivered, packets_dropped =
    let head = net () in
    match topo with
    | None -> head
    | Some t ->
        let s = Net.Topology.substrate t in
        let hs, hd, hdr = head in
        ( hs + s.Net.Topology.s_sent,
          hd + s.Net.Topology.s_delivered,
          hdr + s.Net.Topology.s_dropped )
  in
  { avg_consistency = Consistency.average tracker ~now;
    final_consistency = Consistency.instantaneous tracker;
    latency_mean = Stats.Welford.mean latency;
    latency_ci95 = Stats.Welford.confidence95 latency;
    deliveries = Stats.Welford.count latency;
    transmissions = Consistency.transmissions tracker;
    redundant_fraction = Consistency.redundancy tracker;
    sent_hot; sent_cold; nacks_wanted; nacks_sent; nacks_suppressed;
    nacks_delivered; nack_overflows; reheats;
    false_expiries = Base.false_expiries base;
    stale_purged = Base.stale_purged base;
    live_at_end = Table.live_count (Base.table base);
    utilisation = utilisation ~now;
    fault_transitions =
      (match topo with Some t -> Net.Topology.fault_transitions t | None -> 0);
    fault_drops =
      (match topo with Some t -> Net.Topology.fault_drops t | None -> 0);
    packets_sent;
    packets_delivered;
    packets_dropped;
    series = Consistency.series tracker }

(* ------------------------------------------------------------------ *)
(* Replicated runs across domains                                      *)

module Parallel = Softstate_sim.Parallel
module Metrics = Softstate_obs.Metrics

type summary = {
  replications : int;
  consistency_mean : float;
  consistency_ci95 : float;
  final_consistency_mean : float;
  latency_mean : float;
  latency_ci95 : float;
  deliveries : int;
  transmissions : int;
  redundant_fraction_mean : float;
  utilisation_mean : float;
  sent_hot : int;
  sent_cold : int;
  nacks_sent : int;
  nacks_delivered : int;
  reheats : int;
  false_expiries : int;
  stale_purged : int;
  metrics : (string * Metrics.value) list;
}

(* Per-replication seeds are drawn sequentially from a chain seeded by
   the experiment seed, before any fan-out — so replication [i] sees
   the same seed whatever the job count. *)
let replication_seeds config n =
  let chain = Rng.create config.seed in
  Array.init n (fun _ ->
      Int64.to_int (Int64.shift_right_logical (Rng.bits64 chain) 1))

(* Counters sum; gauges and probes average; distributions combine by
   sample-count weighting (quantiles approximately so). *)
let combine_metric n vs =
  let fail () = invalid_arg "Experiment.run_many: metric kind mismatch" in
  match vs with
  | [] -> fail ()
  | Metrics.Int _ :: _ ->
      Metrics.Int
        (List.fold_left
           (fun acc v -> match v with Metrics.Int i -> acc + i | _ -> fail ())
           0 vs)
  | Metrics.Float _ :: _ ->
      Metrics.Float
        (List.fold_left
           (fun acc v ->
             match v with Metrics.Float f -> acc +. f | _ -> fail ())
           0.0 vs
        /. float_of_int n)
  | Metrics.Dist _ :: _ ->
      let dists =
        List.map
          (fun v ->
            match v with
            | Metrics.Dist
                { count; mean; p50; p90; p99; epsilon; underflow; overflow }
              ->
                (count, mean, p50, p90, p99, epsilon, underflow, overflow)
            | _ -> fail ())
          vs
      in
      let total =
        List.fold_left (fun acc (c, _, _, _, _, _, _, _) -> acc + c) 0 dists
      in
      let wmean field =
        if total = 0 then 0.0
        else
          List.fold_left
            (fun acc d ->
              let (c, _, _, _, _, _, _, _) = d in
              acc +. (float_of_int c *. field d))
            0.0 dists
          /. float_of_int total
      in
      let isum field =
        List.fold_left (fun acc d -> acc + field d) 0 dists
      in
      Metrics.Dist
        { count = total;
          mean = wmean (fun (_, m, _, _, _, _, _, _) -> m);
          p50 = wmean (fun (_, _, p, _, _, _, _, _) -> p);
          p90 = wmean (fun (_, _, _, p, _, _, _, _) -> p);
          p99 = wmean (fun (_, _, _, _, p, _, _, _) -> p);
          (* replication quantiles share one bound; keep the loosest *)
          epsilon =
            List.fold_left
              (fun acc (_, _, _, _, _, e, _, _) -> Float.max acc e)
              0.0 dists;
          underflow = isum (fun (_, _, _, _, _, _, u, _) -> u);
          overflow = isum (fun (_, _, _, _, _, _, _, o) -> o) }

let merge_snapshots snaps =
  match snaps with
  | [] -> []
  | first :: _ ->
      let n = List.length snaps in
      List.mapi
        (fun i (name, _) ->
          let vs =
            List.map
              (fun snap ->
                match List.nth_opt snap i with
                | Some (name', v) when String.equal name name' -> v
                | _ ->
                    invalid_arg
                      "Experiment.run_many: divergent metric snapshots")
              snaps
          in
          (name, combine_metric n vs))
        first

let summarise ~metrics results =
  let n = Array.length results in
  if n = 0 then invalid_arg "Experiment.summarise: no results";
  let cons = Stats.Welford.create () in
  let lat = Stats.Welford.create () in
  let final = ref 0.0 and redundant = ref 0.0 and util = ref 0.0 in
  let deliveries = ref 0 and transmissions = ref 0 in
  let sent_hot = ref 0 and sent_cold = ref 0 in
  let nacks_sent = ref 0 and nacks_delivered = ref 0 in
  let reheats = ref 0 and false_expiries = ref 0 and stale_purged = ref 0 in
  Array.iter
    (fun r ->
      Stats.Welford.add cons r.avg_consistency;
      (* a replication with no deliveries has no latency sample *)
      if r.deliveries > 0 then Stats.Welford.add lat r.latency_mean;
      final := !final +. r.final_consistency;
      redundant := !redundant +. r.redundant_fraction;
      util := !util +. r.utilisation;
      deliveries := !deliveries + r.deliveries;
      transmissions := !transmissions + r.transmissions;
      sent_hot := !sent_hot + r.sent_hot;
      sent_cold := !sent_cold + r.sent_cold;
      nacks_sent := !nacks_sent + r.nacks_sent;
      nacks_delivered := !nacks_delivered + r.nacks_delivered;
      reheats := !reheats + r.reheats;
      false_expiries := !false_expiries + r.false_expiries;
      stale_purged := !stale_purged + r.stale_purged)
    results;
  let fn = float_of_int n in
  { replications = n;
    consistency_mean = Stats.Welford.mean cons;
    consistency_ci95 = Stats.Welford.confidence95 cons;
    final_consistency_mean = !final /. fn;
    latency_mean = Stats.Welford.mean lat;
    latency_ci95 = Stats.Welford.confidence95 lat;
    deliveries = !deliveries;
    transmissions = !transmissions;
    redundant_fraction_mean = !redundant /. fn;
    utilisation_mean = !util /. fn;
    sent_hot = !sent_hot;
    sent_cold = !sent_cold;
    nacks_sent = !nacks_sent;
    nacks_delivered = !nacks_delivered;
    reheats = !reheats;
    false_expiries = !false_expiries;
    stale_purged = !stale_purged;
    metrics }

let run_many ?(jobs = 1) ?(with_metrics = false) ?domain_report ~replications
    config =
  if replications < 1 then
    invalid_arg "Experiment.run_many: replications must be positive";
  let seeds = replication_seeds config replications in
  let outcomes =
    (* lint: allow R001 Heap.nil is a sentinel handle that no code path mutates after module init, and Profiler.disabled is only written by set_enabled on the profiler a caller explicitly enables — each task builds its own engine and obs context, so both module cells are read-only from helper domains *)
    Parallel.map ~jobs ?report:domain_report replications (fun i ->
        (* each replication is self-contained: own seed, own obs
           context, no shared series buffers *)
        let obs = if with_metrics then Some (Softstate_obs.Obs.create ()) else None in
        let r =
          run
            { config with
              seed = seeds.(i); obs; record_series = false }
        in
        let snapshot =
          match obs with
          | None -> []
          | Some o ->
              Metrics.snapshot (Softstate_obs.Obs.metrics o)
                ~now:config.duration
        in
        (r, snapshot))
  in
  let results = Array.map fst outcomes in
  let metrics =
    if with_metrics then
      merge_snapshots (Array.to_list (Array.map snd outcomes))
    else []
  in
  (summarise ~metrics results, results)

let run_grid ?(jobs = 1) ?domain_report configs =
  let effective =
    if jobs <= 0 then Parallel.recommended_jobs () else jobs
  in
  let prepare c =
    (* an obs context is single-domain mutable state: detach it from
       configs that will run on helper domains *)
    if effective > 1 then { c with obs = None } else c
  in
  (* lint: allow R001 same read-only sharing as run_many: Heap.nil is a never-mutated sentinel and Profiler.disabled is detached by prepare (obs = None) before a config crosses onto a helper domain *)
  Parallel.map_list ~jobs ?report:domain_report configs (fun c ->
      run (prepare c))

let summary_report ~config s =
  let module R = Softstate_obs.Report in
  let run_rows =
    [ ("protocol", R.string (match config.protocol with
        | Open_loop _ -> "open-loop" | Two_queue _ -> "two-queue"
        | Feedback _ -> "feedback" | Multicast _ -> "multicast"));
      ("seed", R.int config.seed);
      ("replications", R.int s.replications);
      ("duration_s", R.float config.duration) ]
  in
  let rows =
    [ ("consistency_mean", R.float s.consistency_mean);
      ("consistency_ci95", R.float s.consistency_ci95);
      ("final_consistency_mean", R.float s.final_consistency_mean);
      ("latency_mean_s", R.float s.latency_mean);
      ("latency_ci95_s", R.float s.latency_ci95);
      ("deliveries", R.int s.deliveries);
      ("transmissions", R.int s.transmissions);
      ("redundant_fraction_mean", R.float s.redundant_fraction_mean);
      ("utilisation_mean", R.float s.utilisation_mean);
      ("nacks_sent", R.int s.nacks_sent);
      ("reheats", R.int s.reheats) ]
  in
  R.make ~name:"softstate-sim-replicated"
    [ R.section "run" run_rows; R.section "summary" rows ]

let protocol_name = function
  | Open_loop _ -> "open-loop"
  | Two_queue _ -> "two-queue"
  | Feedback _ -> "feedback"
  | Multicast _ -> "multicast"

let topology_name = function
  | Single_hop -> "single-hop"
  | Star { leaves } -> Printf.sprintf "star:%d" leaves
  | Chain { hops } -> Printf.sprintf "chain:%d" hops
  | Kary_tree { arity; depth } -> Printf.sprintf "tree:%d:%d" arity depth
  | Random_graph { nodes; edge_prob } ->
      Printf.sprintf "random:%d:%g" nodes edge_prob

let report ?obs ~config r =
  let module R = Softstate_obs.Report in
  let topo_rows =
    (* only surfaced for topology runs, so single-hop reports render
       exactly as before *)
    match config.topology with
    | Single_hop -> []
    | spec ->
        [ ("topology", R.string (topology_name spec));
          ("fault_transitions", R.int r.fault_transitions);
          ("fault_drops", R.int r.fault_drops) ]
  in
  let run_rows =
    [ ("protocol", R.string (protocol_name config.protocol));
      ("packets_sent", R.int r.packets_sent);
      ("packets_delivered", R.int r.packets_delivered);
      ("packets_dropped", R.int r.packets_dropped);
      ("seed", R.int config.seed);
      ("duration_s", R.float config.duration);
      ("lambda_kbps", R.float config.lambda_kbps);
      ("mean_loss", R.float (loss_mean config.loss)) ]
    @ topo_rows
  in
  let consistency_rows =
    [ ("average", R.float r.avg_consistency);
      ("final", R.float r.final_consistency);
      ("latency_mean_s", R.float r.latency_mean);
      ("latency_ci95_s", R.float r.latency_ci95);
      ("deliveries", R.int r.deliveries) ]
  in
  let traffic_rows =
    [ ("transmissions", R.int r.transmissions);
      ("redundant_fraction", R.float r.redundant_fraction);
      ("sent_hot", R.int r.sent_hot);
      ("sent_cold", R.int r.sent_cold);
      ("nacks_sent", R.int r.nacks_sent);
      ("nacks_delivered", R.int r.nacks_delivered);
      ("nack_overflows", R.int r.nack_overflows);
      ("reheats", R.int r.reheats);
      ("utilisation", R.float r.utilisation);
      ("live_at_end", R.int r.live_at_end) ]
  in
  let sections =
    [ R.section "run" run_rows;
      R.section "consistency" consistency_rows;
      R.section "traffic" traffic_rows ]
  in
  let sections =
    match obs with
    | None -> sections
    | Some o ->
        sections
        @ [ R.of_metrics (Softstate_obs.Obs.metrics o) ~now:config.duration ]
  in
  R.make ~name:"softstate-sim" sections

(* ------------------------------------------------------------------ *)
(* Gossip dissemination over the flat substrate.

   Reuses [topology_spec] vocabulary: [Single_hop] means uniform
   (complete-graph) mixing over [g_nodes] peers — the configuration
   the mean-field fluid limit describes exactly — while the graph
   kinds run over {!Softstate_net.Flat_topology} meshes, which is
   what makes [random:1000000:p] populations feasible. *)

type gossip_config = {
  g_seed : int;
  g_topology : topology_spec;
  g_nodes : int;            (** population for [Single_hop] mixing *)
  g_mode : Gossip.mode;
  g_fanout : int;
  g_loss : float;           (** per-transmission Bernoulli loss *)
  g_round_period : float;
  g_max_rounds : int;
  g_initial : int;
  g_target : float;
}

let gossip_default =
  { g_seed = 1;
    g_topology = Single_hop;
    g_nodes = 1000;
    g_mode = Gossip.Push;
    g_fanout = 1;
    g_loss = 0.0;
    g_round_period = 1.0;
    g_max_rounds = 64;
    g_initial = 1;
    g_target = 1.0 }

let gossip_population cfg =
  match cfg.g_topology with
  | Single_hop -> cfg.g_nodes
  | Star { leaves } -> leaves + 1
  | Chain { hops } -> hops + 1
  | Kary_tree { arity; depth } ->
      let nodes = ref 1 and layer = ref 1 in
      for _ = 1 to depth do
        layer := !layer * arity;
        nodes := !nodes + !layer
      done;
      !nodes
  | Random_graph { nodes; _ } -> nodes

let gossip_protocol_config cfg =
  { Gossip.seed = cfg.g_seed;
    mode = cfg.g_mode;
    fanout = cfg.g_fanout;
    loss = cfg.g_loss;
    round_period = cfg.g_round_period;
    max_rounds = cfg.g_max_rounds;
    initial = cfg.g_initial;
    target_fraction = cfg.g_target }

let gossip_peers cfg =
  match cfg.g_topology with
  | Single_hop -> Gossip.Uniform cfg.g_nodes
  | Star { leaves } -> Gossip.Mesh (Net.Flat_topology.star ~leaves ())
  | Chain { hops } -> Gossip.Mesh (Net.Flat_topology.chain ~hops ())
  | Kary_tree { arity; depth } ->
      Gossip.Mesh (Net.Flat_topology.kary_tree ~arity ~depth ())
  | Random_graph { nodes; edge_prob } ->
      (* structure stream split off the seed's root, so the builder's
         draws stay clear of the protocol stream *)
      Gossip.Mesh
        (Net.Flat_topology.random
           ~rng:(Rng.split (Rng.create cfg.g_seed))
           ~nodes ~edge_prob ())

let run_gossip ?obs cfg =
  let engine = Engine.create () in
  (match obs with
  | None -> ()
  | Some obs -> Softstate_obs.Engine_probe.attach ~obs engine);
  Gossip.run ?obs ~engine (gossip_protocol_config cfg) (gossip_peers cfg)

let fluid_gossip ?rounds cfg =
  Gossip.fluid ?rounds (gossip_protocol_config cfg)
    ~nodes:(gossip_population cfg)

let gossip_topology_name cfg =
  match cfg.g_topology with
  | Single_hop -> Printf.sprintf "uniform:%d" cfg.g_nodes
  | spec -> topology_name spec

(* First series time at which the infected fraction reaches [frac];
   nan if never. *)
let gossip_time_to (r : Gossip.result) frac =
  let t = ref nan in
  Array.iter
    (fun (time, c) -> if Float.is_nan !t && c >= frac then t := time)
    r.Gossip.series;
  !t

let gossip_report ?obs ~config (r : Gossip.result) =
  let module R = Softstate_obs.Report in
  let n = float_of_int r.Gossip.nodes in
  let run_rows =
    [ ("protocol", R.string ("gossip/" ^ Gossip.mode_name config.g_mode));
      ("peers", R.string (gossip_topology_name config));
      ("seed", R.int config.g_seed);
      ("nodes", R.int r.Gossip.nodes);
      ("fanout", R.int config.g_fanout);
      ("loss", R.float config.g_loss);
      ("round_period_s", R.float config.g_round_period) ]
  in
  let dissemination_rows =
    [ ("rounds", R.int r.Gossip.rounds);
      ("infected", R.int r.Gossip.infected);
      ("infected_fraction", R.float (float_of_int r.Gossip.infected /. n));
      ("time_to_half_s", R.float (gossip_time_to r 0.5));
      ("time_to_99pc_s", R.float (gossip_time_to r 0.99));
      ("digest", R.string r.Gossip.digest) ]
  in
  let traffic_rows =
    [ ("transmissions", R.int r.Gossip.transmissions);
      ("deliveries", R.int r.Gossip.deliveries);
      ("redundant", R.int r.Gossip.redundant);
      ("misses", R.int r.Gossip.misses);
      ("lost", R.int r.Gossip.lost);
      ("blackholed", R.int r.Gossip.blackholed) ]
  in
  let sections =
    [ R.section "run" run_rows;
      R.section "dissemination" dissemination_rows;
      R.section "traffic" traffic_rows ]
  in
  let sections =
    match obs with
    | None -> sections
    | Some o ->
        let now =
          match r.Gossip.series with
          | [||] -> 0.0
          | s -> fst s.(Array.length s - 1)
        in
        sections @ [ R.of_metrics (Softstate_obs.Obs.metrics o) ~now ]
  in
  R.make ~name:"softstate-gossip" sections

(** The publisher's table of live records — the live data set L(t).

    Thin wrapper over a hash table that maintains the live count and
    enumerates keys cheaply; every protocol variant holds one as its
    authoritative state. *)

type t

val create : unit -> t
val live_count : t -> int
val find : t -> Record.key -> Record.t option
val mem : t -> Record.key -> bool

val insert : t -> Record.t -> unit
(** Add a fresh record; [Invalid_argument] if the key is already
    live (update via {!Record.touch} instead). *)

val remove : t -> Record.key -> Record.t option
(** Kill a record; [None] if it was not live. *)

val iter : t -> (Record.t -> unit) -> unit
(** Visit live records in ascending key order (O(live log live)); the
    order is part of the contract so results never depend on
    hash-bucket layout. *)

val fold : t -> init:'a -> f:('a -> Record.t -> 'a) -> 'a
(** Like {!iter}, in ascending key order. *)

val random_key : t -> Softstate_util.Rng.t -> Record.key option
(** A uniformly random live key, or [None] when empty; O(1). The
    draw depends only on the seeded generator and the insert/remove
    history, never on hash order. *)

val key_at : t -> int -> Record.key option
(** The live key in dense slot [slot], or [None] when out of range;
    O(1). Slot order is a function of the insert/remove history alone
    (see {!random_key}), so rank-addressed draws — e.g. Zipf-skewed
    update targets — stay deterministic. *)

val slot_of_key : t -> Record.key -> int option
(** The key's current dense slot in [0, live_count), or [None] if not
    live. Slots are stable between mutations but removal moves the
    last key into the vacated slot — callers holding slot-indexed
    side state must mirror that swap. *)

module Rng = Softstate_util.Rng

(* Alongside the record map, a dense array of live keys with a
   key->slot index. Sampling indexes the array directly, and removal
   swaps the last key into the vacated slot, so the array order — and
   therefore every random update target drawn from it — is a function
   of the insert/remove history alone, never of hash-bucket layout.
   (The determinism lint's D003 exists for exactly this: the previous
   implementation walked Hashtbl.iter to the target index, so the
   chosen key depended on hash order.) *)
type t = {
  records : (Record.key, Record.t) Hashtbl.t;
  slots : (Record.key, int) Hashtbl.t;
  mutable keys : Record.key array;
  mutable live : int;
}

let create () =
  { records = Hashtbl.create 256;
    slots = Hashtbl.create 256;
    keys = Array.make 256 0;
    live = 0 }

let live_count t = t.live
let find t key = Hashtbl.find_opt t.records key
let mem t key = Hashtbl.mem t.records key
let slot_of_key t key = Hashtbl.find_opt t.slots key

let insert t r =
  let key = r.Record.key in
  if Hashtbl.mem t.records key then
    invalid_arg "Table.insert: key already live";
  Hashtbl.add t.records key r;
  if t.live = Array.length t.keys then begin
    let grown = Array.make (2 * t.live) 0 in
    Array.blit t.keys 0 grown 0 t.live;
    t.keys <- grown
  end;
  t.keys.(t.live) <- key;
  Hashtbl.replace t.slots key t.live;
  t.live <- t.live + 1

let remove t key =
  match Hashtbl.find_opt t.records key with
  | None -> None
  | Some r ->
      Hashtbl.remove t.records key;
      let slot =
        match Hashtbl.find_opt t.slots key with
        | Some s -> s
        | None -> assert false
      in
      Hashtbl.remove t.slots key;
      let last = t.keys.(t.live - 1) in
      if last <> key then begin
        t.keys.(slot) <- last;
        Hashtbl.replace t.slots last slot
      end;
      t.live <- t.live - 1;
      Some r

let sorted_keys t =
  let live = Array.sub t.keys 0 t.live in
  Array.sort Int.compare live;
  live

let record t key =
  match Hashtbl.find_opt t.records key with
  | Some r -> r
  | None -> assert false

let iter t f = Array.iter (fun key -> f (record t key)) (sorted_keys t)

let fold t ~init ~f =
  Array.fold_left (fun acc key -> f acc (record t key)) init (sorted_keys t)

let random_key t rng =
  if t.live = 0 then None else Some t.keys.(Rng.int rng t.live)

let key_at t slot =
  if slot < 0 || slot >= t.live then None else Some t.keys.(slot)

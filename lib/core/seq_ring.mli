(** Bounded seq -> key memory for NACK-based repair.

    A direct-mapped ring over the last [window] channel sequence
    numbers: {!store} and {!find} are O(1) and memory is fixed at
    creation. Sequences older than the window are forgotten by slot
    reuse — by construction a FIFO data link can only produce NACKs
    for recent gaps, so a miss means the repair is obsolete. *)

type t

val create : window:int -> t
(** [window] must be a positive power of two. *)

val store : t -> seq:int -> key:Record.key -> unit
(** Remember that [seq] announced [key]. [seq] must be
    non-negative. *)

val find : t -> int -> Record.key option
(** The key announced with [seq], if it is still within the last
    [window] sequence numbers stored. *)

(** Publisher update workloads (paper §2).

    The update process adds or touches records in the publisher's
    table. The paper parameterises it by λ, the average table update
    rate in announcement-bandwidth units (kb/s); with fixed-size
    announcements that is a Poisson record-arrival process of rate
    [λ_bits / size_bits] per second. A fraction of arrivals may
    update an existing live key instead of inserting a new one —
    equivalent for the consistency metric, but it keeps the live set
    (and hence the cold-queue length) bounded differently, which the
    `ablate` benches explore.

    The arrival {!shape} generalises the paper's time-homogeneous
    Poisson process to production-shaped load: {!Flash_crowd} runs the
    same mean rate through periodic burst windows (rate × [mult] for
    [dwell] seconds out of every [period]) and skews update targets
    toward popular keys with a Zipf([zipf_s]) rank draw over the live
    table. [Poisson] is the default and is draw-for-draw identical to
    the historical behaviour. *)

type shape =
  | Poisson  (** time-homogeneous arrivals, the paper's model *)
  | Flash_crowd of {
      mult : float;    (** burst rate multiplier, > 0 *)
      period : float;  (** burst cycle length in seconds, > 0 *)
      dwell : float;   (** burst duration per cycle, in [0, period] *)
      zipf_s : float;
        (** Zipf exponent for update-target popularity over the live
            table; 0 means uniform (the Poisson behaviour) *)
    }

type t = private {
  arrival_rate : float;  (** records per second (long-run mean) *)
  size_bits : int;       (** announcement size per record *)
  update_fraction : float;
    (** probability an arrival touches an existing key (when one is
        live) rather than inserting a new key *)
  shape : shape;
}

val create :
  ?update_fraction:float ->
  ?shape:shape ->
  arrival_rate:float ->
  size_bits:int ->
  unit ->
  t
(** Direct construction in records/second. [update_fraction] defaults
    to 0 (pure insertions, the paper's model); [shape] defaults to
    [Poisson]. *)

val of_kbps :
  ?update_fraction:float ->
  ?shape:shape ->
  lambda_kbps:float ->
  size_bits:int ->
  unit ->
  t
(** [of_kbps ~lambda_kbps ~size_bits ()] converts the paper's λ: a
    record of [size_bits] bits arriving with mean rate
    [lambda_kbps * 1000 / size_bits] per second. *)

val lambda_bps : t -> float
(** Offered update load in bits/second, λ. *)

val shape : t -> shape

val next_interarrival : t -> Softstate_util.Rng.t -> float
(** Draw the exponential gap to the next arrival at the long-run mean
    rate, ignoring any burst shape. Kept for callers that model the
    homogeneous process directly. *)

val next_interarrival_at : t -> now:float -> Softstate_util.Rng.t -> float
(** Draw the gap to the next arrival given the current absolute time.
    For [Poisson] this is exactly {!next_interarrival} (one uniform
    draw, byte-identical stream); for [Flash_crowd] it inverts the
    piecewise-constant burst hazard (also one uniform draw). *)

val is_update : t -> Softstate_util.Rng.t -> bool
(** Draw whether this arrival updates an existing key. *)

val shape_to_string : shape -> string
(** ["poisson"], or ["flash:MULT:PERIOD:DWELL:S"] with [%.17g] floats
    so the codec round-trips exactly. *)

val shape_of_string : string -> shape option
(** Inverse of {!shape_to_string}; [None] on syntax or range errors. *)

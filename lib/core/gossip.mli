(** Round-synchronous epidemic (gossip) dissemination with a
    mean-field fluid mode.

    Each round, every infected node pushes the rumour to [fanout]
    uniformly-drawn neighbours; in push-pull mode every susceptible
    node additionally pulls from [fanout] neighbours. Rounds are
    batched: one calendar event per round sweeps every contact with
    array reads/writes (no per-contact closures or packet records),
    so 10^5-10^6-node populations run within memory on the flat
    substrate.

    Determinism: a run is a pure function of [(config, peers)]. The
    [digest] folds the complete infection sequence through a 64-bit
    mix — equal digests mean identical delivery traces, which is what
    the golden pins and the flat-vs-object equivalence tests check. *)

type mode = Push | Push_pull

val mode_name : mode -> string
(** ["push"] / ["push-pull"]. *)

(** Who can contact whom. *)
type peers =
  | Uniform of int
      (** Complete-graph mixing over a population of the given size,
          without materialising O(N^2) edges — the configuration the
          mean-field {!fluid} limit describes exactly. *)
  | Mesh of Softstate_net.Flat_topology.t
      (** Contacts restricted to graph neighbours; transmissions over
          down cables or into down nodes are blackholed. *)
  | View of {
      view_nodes : int;
      view_degree : int -> int;
      view_neighbor : int -> int -> int;
    }
      (** An arbitrary adjacency view (no fault state). Supplying the
          same graph through [Mesh] and through a [View] built from
          another engine must yield identical runs — the equivalence
          tests exercise exactly that. *)

type config = {
  seed : int;            (** protocol RNG stream *)
  mode : mode;
  fanout : int;          (** contacts per node per round, >= 1 *)
  loss : float;          (** per-transmission Bernoulli loss, [0, 1] *)
  round_period : float;  (** simulated seconds per round, > 0 *)
  max_rounds : int;
  initial : int;         (** nodes [0 .. initial-1] start infected *)
  target_fraction : float;
      (** stop once the infected fraction reaches this, in (0, 1] *)
}

val default : config
(** Push, fanout 1, lossless, 1 s rounds, 64 rounds max, one initial
    infective, run to full dissemination, seed 1. *)

type result = {
  nodes : int;
  rounds : int;          (** rounds actually executed *)
  infected : int;        (** final infected count *)
  transmissions : int;   (** contacts attempted *)
  deliveries : int;      (** first-time infections; [infected - initial] *)
  redundant : int;       (** contacts reaching already-infected nodes *)
  misses : int;
      (** pull contacts whose peer had nothing to offer, plus contacts
          from isolated nodes. Conservation (the fuzzer oracle):
          [transmissions = deliveries + redundant + misses + lost +
          blackholed], exactly. *)
  lost : int;            (** destroyed by the loss draw *)
  blackholed : int;      (** destroyed by down cables / nodes *)
  digest : string;       (** 16-hex-digit delivery-trace digest *)
  series : (float * float) array;
      (** (time, infected fraction) at round boundaries, index 0 the
          initial state *)
}

val run :
  ?obs:Softstate_obs.Obs.t ->
  ?engine:Softstate_sim.Engine.t ->
  config ->
  peers ->
  result
(** With [?obs], live [gossip.*] metrics probes are registered and a
    [Custom "round"] trace event is emitted per round; an enabled
    profiler additionally gets [profile.gossip.*] allocation-rate
    probes. With [?engine] the rounds ride an existing calendar
    (driven up to [max_rounds] periods); otherwise a private engine
    is created and drained. *)

val fluid : ?rounds:int -> config -> nodes:int -> (float * float) array
(** The mean-field trajectory of the infected fraction on the same
    (time, fraction) grid as [run]'s [series], for a population of
    [nodes] under [Uniform] mixing: per round, a susceptible node
    stays susceptible with probability [exp (-beta x)] (push misses;
    [beta = fanout * (1 - loss)]), times
    [(1 - (1 - loss) x)^fanout] in push-pull mode (its own pulls
    miss). [rounds] defaults to [config.max_rounds]. The
    discrete-event c(t) converges to this as N grows; the tolerance
    at N = 10^4 is pinned in the test suite. *)

val fluid_step : config -> float -> float
(** One application of the mean-field map (exposed for the one-step
    convergence assertions). *)

module Engine = Softstate_sim.Engine
module Expiry_wheel = Softstate_sim.Expiry_wheel
module Rng = Softstate_util.Rng

type announcement = {
  key : Record.key;
  version : Record.version;
  seq : int;
}

type death_spec =
  | Per_service of float
  | Lifetime_fixed of float
  | Lifetime_exp of float

type expiry_spec =
  | No_expiry
  | Refresh_timeout of { multiple : float; sweep_period : float }
  | Refresh_wheel of { multiple : float }

let f17 = Printf.sprintf "%.17g"

let expiry_to_string = function
  | No_expiry -> "none"
  | Refresh_timeout { multiple; sweep_period } ->
      Printf.sprintf "refresh:%s:%s" (f17 multiple) (f17 sweep_period)
  | Refresh_wheel { multiple } -> Printf.sprintf "wheel:%s" (f17 multiple)

let expiry_of_string s =
  match String.split_on_char ':' s with
  | [ "none" ] -> Ok No_expiry
  | [ ("refresh" | "sweep"); m; p ] -> (
      match (float_of_string_opt m, float_of_string_opt p) with
      | Some multiple, Some sweep_period ->
          Ok (Refresh_timeout { multiple; sweep_period })
      | _ -> Error ("bad expiry " ^ s))
  | [ "wheel"; m ] -> (
      match float_of_string_opt m with
      | Some multiple -> Ok (Refresh_wheel { multiple })
      | None -> Error ("bad expiry " ^ s))
  | _ -> Error ("bad expiry " ^ s)

(* Per-receiver, per-key soft-state entry. [gap] is the scalable-timer
   estimate of the sender's refresh interval for this key (EWMA of
   observed inter-announcement gaps); [nan] until two announcements
   have been heard. *)
type entry = {
  mutable version : Record.version;
  mutable last_heard : float;
  mutable gap : float;
}

(* Struct-of-arrays receiver state, indexed by the record's dense
   Table slot: one row of parallel arrays instead of one boxed
   Hashtbl entry per (receiver, key). Rows relocate in lockstep with
   Table's swap-remove, and rows at slots >= live are always cleared.
   Slots beyond the current capacity are implicitly absent — arrays
   only grow when a delivery actually writes that far. Flag bits:
   bit 0 = copy present, bit 1 = a wheel expiry timer is armed. *)
type soa = {
  mutable version_a : Record.version array;
  mutable last_heard_a : float array;
  mutable gap_a : float array;
  mutable flags : Bytes.t;
}

(* Which receiver-state backend a run uses is decided by the expiry
   spec at create time. The sweep implementation keeps its historical
   Hashtbl maps (its scan iterates per-key state directly); the
   no-expiry and wheel paths run on the flat rows. *)
type store =
  | Maps of (Record.key, entry) Hashtbl.t array
  | Rows of soa array

type t = {
  engine : Engine.t;
  arrival_rng : Rng.t;
  death_rng : Rng.t;
  update_rng : Rng.t;
  table : Table.t;
  store : store;
  wheel : (int * Record.key) Expiry_wheel.t;
  mutable wheel_event : (Engine.event * float) option;
  tracker : Consistency.t;
  workload : Workload.t;
  death : death_spec;
  expiry : expiry_spec;
  mutable next_key : int;
  mutable on_arrival : Record.t -> unit;
  mutable on_death : Record.t -> unit;
  mutable hooks_set : bool;
  mutable false_expiries : int;
  mutable stale_purged : int;
}

let validate_death = function
  | Per_service p ->
      if p <= 0.0 || p > 1.0 then
        invalid_arg "Base.create: per-service death probability in (0,1]"
  | Lifetime_fixed ttl | Lifetime_exp ttl ->
      if ttl <= 0.0 then invalid_arg "Base.create: lifetime must be positive"

let validate_expiry = function
  | No_expiry -> ()
  | Refresh_timeout { multiple; sweep_period } ->
      if multiple <= 1.0 then
        invalid_arg "Base.create: expiry multiple must exceed 1";
      if sweep_period <= 0.0 then
        invalid_arg "Base.create: sweep period must be positive"
  | Refresh_wheel { multiple } ->
      if multiple <= 1.0 then
        invalid_arg "Base.create: expiry multiple must exceed 1"

let soa_create () =
  { version_a = Array.make 256 0;
    last_heard_a = Array.make 256 0.0;
    gap_a = Array.make 256 nan;
    flags = Bytes.make 256 '\000' }

let soa_capacity soa = Array.length soa.version_a

let soa_ensure soa slot =
  let cap = soa_capacity soa in
  if slot >= cap then begin
    let ncap = ref (2 * cap) in
    while slot >= !ncap do
      ncap := 2 * !ncap
    done;
    let ncap = !ncap in
    let grow_int a =
      let g = Array.make ncap 0 in
      Array.blit a 0 g 0 cap;
      g
    in
    let grow_float a fill =
      let g = Array.make ncap fill in
      Array.blit a 0 g 0 cap;
      g
    in
    soa.version_a <- grow_int soa.version_a;
    soa.last_heard_a <- grow_float soa.last_heard_a 0.0;
    soa.gap_a <- grow_float soa.gap_a nan;
    let nf = Bytes.make ncap '\000' in
    Bytes.blit soa.flags 0 nf 0 cap;
    soa.flags <- nf
  end

let soa_present soa slot =
  slot < soa_capacity soa && Bytes.get_uint8 soa.flags slot land 1 <> 0

let soa_armed soa slot =
  slot < soa_capacity soa && Bytes.get_uint8 soa.flags slot land 2 <> 0

let soa_set_flags soa slot ~present ~armed =
  Bytes.set_uint8 soa.flags slot
    ((if present then 1 else 0) lor if armed then 2 else 0)

(* Clear the row a dying record occupied and mirror Table's
   swap-remove: the last slot's row moves into the vacated slot so
   row index keeps tracking table slot. Called after [Table.remove];
   [slot] is the dying record's slot before removal and [last_slot]
   the pre-removal last slot. *)
let soa_on_remove soa ~slot ~last_slot =
  let cap = soa_capacity soa in
  if slot <> last_slot && last_slot < cap then begin
    (* slot < last_slot < cap: the vacated row is in range *)
    soa.version_a.(slot) <- soa.version_a.(last_slot);
    soa.last_heard_a.(slot) <- soa.last_heard_a.(last_slot);
    soa.gap_a.(slot) <- soa.gap_a.(last_slot);
    Bytes.set_uint8 soa.flags slot (Bytes.get_uint8 soa.flags last_slot);
    Bytes.set_uint8 soa.flags last_slot 0
  end
  else if slot < cap then
    (* either the dying record held the last slot, or the moved-in
       key's row lies beyond capacity (implicitly absent): the vacated
       row just clears *)
    Bytes.set_uint8 soa.flags slot 0

let create ~engine ~rng ~workload ~death ?(receivers = 1)
    ?(expiry = No_expiry) ~tracker () =
  validate_death death;
  validate_expiry expiry;
  if receivers < 1 then invalid_arg "Base.create: receivers >= 1";
  if Consistency.receivers tracker <> receivers then
    invalid_arg "Base.create: tracker sized for a different group";
  let store =
    match expiry with
    | Refresh_timeout _ ->
        Maps (Array.init receivers (fun _ -> Hashtbl.create 256))
    | No_expiry | Refresh_wheel _ ->
        Rows (Array.init receivers (fun _ -> soa_create ()))
  in
  { engine;
    arrival_rng = Rng.split rng;
    death_rng = Rng.split rng;
    update_rng = Rng.split rng;
    table = Table.create ();
    store;
    wheel = Expiry_wheel.create ~start:(Engine.now engine) ();
    wheel_event = None;
    tracker; workload; death; expiry; next_key = 0;
    on_arrival = ignore; on_death = ignore; hooks_set = false;
    false_expiries = 0; stale_purged = 0 }

let set_hooks t ~on_arrival ~on_death =
  t.on_arrival <- on_arrival;
  t.on_death <- on_death;
  t.hooks_set <- true

let engine t = t.engine
let table t = t.table
let tracker t = t.tracker
let workload t = t.workload

let receiver_count t =
  match t.store with Maps a -> Array.length a | Rows a -> Array.length a

let false_expiries t = t.false_expiries
let stale_purged t = t.stale_purged

let check_receiver t receiver =
  if receiver < 0 || receiver >= receiver_count t then
    invalid_arg "Base: receiver index out of range"

let receiver_version t ~receiver key =
  check_receiver t receiver;
  match t.store with
  | Maps maps -> (
      match Hashtbl.find_opt maps.(receiver) key with
      | Some e -> Some e.version
      | None -> None)
  | Rows rows -> (
      match Table.slot_of_key t.table key with
      | Some slot when soa_present rows.(receiver) slot ->
          Some rows.(receiver).version_a.(slot)
      | Some _ | None -> None)

let is_matching t ~receiver r =
  match receiver_version t ~receiver r.Record.key with
  | Some v -> v = r.Record.version
  | None -> false

let matching_count t r =
  match t.store with
  | Maps maps ->
      Array.fold_left
        (fun acc map ->
          match Hashtbl.find_opt map r.Record.key with
          | Some e when e.version = r.Record.version -> acc + 1
          | Some _ | None -> acc)
        0 maps
  | Rows rows -> (
      match Table.slot_of_key t.table r.Record.key with
      | None -> 0
      | Some slot ->
          Array.fold_left
            (fun acc soa ->
              if
                soa_present soa slot
                && soa.version_a.(slot) = r.Record.version
              then acc + 1
              else acc)
            0 rows)

let remove_record t ~now r =
  (* matching_count only reads receiver state, so it commutes with the
     table removal; it must run while the key still has a slot. *)
  let matching = matching_count t r in
  let key = r.Record.key in
  (match t.store with
  | Maps maps ->
      ignore (Table.remove t.table key);
      (* With sweep expiry running, dead records linger in the receiver
         maps until their refresh timeout fires - soft-state garbage
         collection doing its job (counted by stale_purged). Without
         timers we drop them eagerly so nothing leaks. *)
      (match t.expiry with
      | No_expiry -> Array.iter (fun map -> Hashtbl.remove map key) maps
      | Refresh_timeout _ | Refresh_wheel _ -> ())
  | Rows rows ->
      (* Slot-indexed rows cannot outlive the slot: the dying record's
         row is reclaimed here, in lockstep with Table's swap-remove.
         Under wheel expiry an armed timer for the dead key stays in
         the wheel and is counted as stale_purged when it surfaces —
         the same garbage-collection event the sweep counts, observed
         at timer-fire time instead of scan time. *)
      let slot =
        match Table.slot_of_key t.table key with
        | Some s -> s
        | None -> assert false
      in
      let last_slot = Table.live_count t.table - 1 in
      ignore (Table.remove t.table key);
      Array.iter (fun soa -> soa_on_remove soa ~slot ~last_slot) rows);
  Consistency.on_death t.tracker ~now ~matching;
  t.on_death r

let schedule_expiry t r =
  let schedule_kill after =
    ignore
      (Engine.schedule t.engine ~after (fun engine ->
           (* The key may have died early (e.g. explicit kill in
              tests); remove_record is only called on live records. *)
           match Table.find t.table r.Record.key with
           | Some live -> remove_record t ~now:(Engine.now engine) live
           | None -> ()))
  in
  match t.death with
  | Per_service _ -> ()
  | Lifetime_fixed ttl -> schedule_kill ttl
  | Lifetime_exp mean ->
      schedule_kill
        (Softstate_util.Dist.exponential t.death_rng ~rate:(1.0 /. mean))

let arrival t =
  let now = Engine.now t.engine in
  let update_target =
    if Workload.is_update t.workload t.update_rng then
      match Workload.shape t.workload with
      | Workload.Flash_crowd { zipf_s; _ } when zipf_s > 0.0 ->
          (* popularity-skewed target: Zipf rank over the dense slot
             order, so rank 1 is whichever key currently sits in slot
             0 — the "hot" identity churns with swap-removal, which is
             exactly the flash-crowd shape we want to stress *)
          let live = Table.live_count t.table in
          if live = 0 then None
          else
            Table.key_at t.table
              (Softstate_util.Dist.zipf_approx t.update_rng ~n:live ~s:zipf_s
              - 1)
      | Workload.Flash_crowd _ | Workload.Poisson ->
          Table.random_key t.table t.update_rng
    else None
  in
  match update_target with
  | Some key ->
      let r =
        match Table.find t.table key with
        | Some r -> r
        | None -> assert false
      in
      let matching = matching_count t r in
      Record.touch r ~now;
      Consistency.on_update t.tracker ~now ~matching;
      t.on_arrival r
  | None ->
      let key = t.next_key in
      t.next_key <- key + 1;
      let r = Record.make ~key ~now ~size_bits:t.workload.Workload.size_bits in
      Table.insert t.table r;
      Consistency.on_birth t.tracker ~now;
      schedule_expiry t r;
      t.on_arrival r

(* One expiry sweep over one receiver's soft state. A record is
   expired after [multiple] estimated refresh intervals of silence;
   without a gap estimate (heard fewer than twice) it is left alone. *)
let sweep_receiver t ~now ~multiple receiver =
  let map =
    match t.store with
    | Maps maps -> maps.(receiver)
    | Rows _ -> assert false
  in
  let doomed =
    (* lint: allow D003 commutative: builds an unordered removal set; per-key expiry effects are independent *)
    Hashtbl.fold
      (fun key e acc ->
        if
          (not (Float.is_nan e.gap))
          && now -. e.last_heard > multiple *. e.gap
        then key :: acc
        else acc)
      map []
  in
  List.iter
    (fun key ->
      match Table.find t.table key with
      | Some r ->
          t.false_expiries <- t.false_expiries + 1;
          let was_matching = is_matching t ~receiver r in
          Hashtbl.remove map key;
          if was_matching then Consistency.on_unmatch t.tracker ~now
      | None ->
          t.stale_purged <- t.stale_purged + 1;
          Hashtbl.remove map key)
    doomed

(* --- wheel-based expiry -------------------------------------------

   One Expiry_wheel of (receiver, key) deadlines, driven by a single
   armed Engine one-shot at the wheel's next-due time. Timers are
   lazy-pushback: a delivery never reschedules an armed timer, it only
   refreshes the row; when the timer fires, the true deadline is
   recomputed from the row and the timer is pushed back if the record
   has been heard from since. A timer is armed exactly when the row's
   armed bit is set, so each (receiver, key) has at most one live
   wheel entry.

   Contract vs the sweep: the wheel fires at the deadline itself, so a
   record is expired when now - last_heard >= multiple * gap (the
   sweep, sampling at sweep_period boundaries, tests with strict >
   some time after the deadline has passed). Dead keys cannot linger
   in slot-indexed rows (the slot is recycled), so their copies are
   reclaimed at sender death and stale_purged counts the orphaned
   timer firing instead of a scan hit. *)

let wheel_rows t =
  match t.store with Rows rows -> rows | Maps _ -> assert false

let wheel_multiple t =
  match t.expiry with
  | Refresh_wheel { multiple } -> multiple
  | No_expiry | Refresh_timeout _ -> assert false

let rec drive_wheel t engine =
  let now = Engine.now engine in
  t.wheel_event <- None;
  let rec loop () =
    match Expiry_wheel.next_due t.wheel with
    | Some due when due <= now -> (
        match Expiry_wheel.pop t.wheel with
        | Some (_, (receiver, key)) ->
            fire_expiry t ~now receiver key;
            loop ()
        | None -> ())
    | Some _ | None -> ()
  in
  loop ();
  rearm_wheel t ~now

and fire_expiry t ~now receiver key =
  match Table.slot_of_key t.table key with
  | None ->
      (* the record died at the sender; its row was reclaimed with the
         slot, and this orphaned timer is the purge event *)
      t.stale_purged <- t.stale_purged + 1
  | Some slot ->
      let soa = (wheel_rows t).(receiver) in
      if soa_present soa slot && soa_armed soa slot then begin
        let deadline =
          soa.last_heard_a.(slot)
          +. (wheel_multiple t *. soa.gap_a.(slot))
        in
        if deadline <= now then begin
          t.false_expiries <- t.false_expiries + 1;
          let r =
            match Table.find t.table key with
            | Some r -> r
            | None -> assert false
          in
          let was_matching = soa.version_a.(slot) = r.Record.version in
          soa_set_flags soa slot ~present:false ~armed:false;
          if was_matching then Consistency.on_unmatch t.tracker ~now
        end
        else
          (* heard from since the timer was set: push back to the
             recomputed deadline (the armed bit stays set) *)
          ignore (Expiry_wheel.schedule t.wheel ~time:deadline (receiver, key))
      end

(* (Re)arm the single engine one-shot at the wheel's next-due time.
   Only called after a drive drains the due prefix, so the O(levels *
   slots) next_due scan runs once per firing batch, not per event. *)
and rearm_wheel t ~now =
  match Expiry_wheel.next_due t.wheel with
  | None -> ()
  | Some due ->
      let after = Float.max 0.0 (due -. now) in
      let ev = Engine.schedule t.engine ~after (fun e -> drive_wheel t e) in
      t.wheel_event <- Some (ev, now +. after)

(* A newly armed timer at [deadline] needs the engine one-shot pulled
   earlier iff it beats the currently armed time — an O(1) comparison,
   so deliveries stay cheap. *)
let note_deadline t ~now ~deadline =
  match t.wheel_event with
  | Some (_, armed_at) when armed_at <= deadline -> ()
  | other ->
      (match other with
      | Some (ev, _) -> ignore (Engine.cancel t.engine ev)
      | None -> ());
      let after = Float.max 0.0 (deadline -. now) in
      let ev = Engine.schedule t.engine ~after (fun e -> drive_wheel t e) in
      t.wheel_event <- Some (ev, now +. after)

let start t =
  if not t.hooks_set then failwith "Base.start: hooks not set";
  let rec tick engine =
    arrival t;
    ignore
      (Engine.schedule engine
         ~after:
           (Workload.next_interarrival_at t.workload ~now:(Engine.now engine)
              t.arrival_rng)
         tick)
  in
  ignore
    (Engine.schedule t.engine
       ~after:
         (Workload.next_interarrival_at t.workload ~now:(Engine.now t.engine)
            t.arrival_rng)
       tick);
  match t.expiry with
  | No_expiry -> ()
  | Refresh_wheel _ ->
      (* timers are armed per-row as gap estimates form; the engine
         one-shot is managed on demand *)
      ()
  | Refresh_timeout { multiple; sweep_period } ->
      let (_ : unit -> bool) =
        Engine.every t.engine ~period:sweep_period (fun engine ->
            let now = Engine.now engine in
            for receiver = 0 to receiver_count t - 1 do
              sweep_receiver t ~now ~multiple receiver
            done)
      in
      ()

let announce_of t ~seq r =
  Consistency.on_transmission t.tracker
    ~redundant:(matching_count t r = receiver_count t);
  { key = r.Record.key; version = r.Record.version; seq }

let deliver t ~now ~receiver ann =
  check_receiver t receiver;
  (* Announcements of dead keys are absorbed without storing: a real
     subscriber would cache and expire them, with no effect on the
     consistency metric (only live keys count); dropping them here
     keeps the receiver state bounded by the live set. *)
  match Table.find t.table ann.key with
  | None -> ()
  | Some r -> (
      let note_match () =
        if r.Record.version = ann.version then begin
          Consistency.on_match t.tracker ~now;
          (* latency is sampled once per version, at its first arrival
             anywhere in the group *)
          if matching_count t r = 1 then
            Consistency.on_first_delivery t.tracker ~now ~born:r.Record.born
        end
      in
      match t.store with
      | Maps maps -> (
          let map = maps.(receiver) in
          match Hashtbl.find_opt map ann.key with
          | None ->
              Hashtbl.replace map ann.key
                { version = ann.version; last_heard = now; gap = nan };
              note_match ()
          | Some e ->
              (* scalable-timers gap estimation: EWMA of observed
                 inter-announcement gaps, gain 0.25 *)
              let observed = now -. e.last_heard in
              e.gap <-
                (if Float.is_nan e.gap then observed
                 else (0.25 *. observed) +. (0.75 *. e.gap));
              e.last_heard <- now;
              if ann.version > e.version then begin
                e.version <- ann.version;
                note_match ()
              end)
      | Rows rows ->
          let slot =
            match Table.slot_of_key t.table ann.key with
            | Some s -> s
            | None -> assert false
          in
          let soa = rows.(receiver) in
          soa_ensure soa slot;
          if not (soa_present soa slot) then begin
            soa.version_a.(slot) <- ann.version;
            soa.last_heard_a.(slot) <- now;
            soa.gap_a.(slot) <- nan;
            soa_set_flags soa slot ~present:true ~armed:false;
            note_match ()
          end
          else begin
            let observed = now -. soa.last_heard_a.(slot) in
            let gap =
              if Float.is_nan soa.gap_a.(slot) then observed
              else (0.25 *. observed) +. (0.75 *. soa.gap_a.(slot))
            in
            soa.gap_a.(slot) <- gap;
            soa.last_heard_a.(slot) <- now;
            (match t.expiry with
            | Refresh_wheel { multiple } ->
                if not (soa_armed soa slot) then begin
                  (* first defined gap estimate: arm the expiry timer *)
                  let deadline = now +. (multiple *. gap) in
                  ignore
                    (Expiry_wheel.schedule t.wheel ~time:deadline
                       (receiver, ann.key));
                  soa_set_flags soa slot ~present:true ~armed:true;
                  note_deadline t ~now ~deadline
                end
            | No_expiry | Refresh_timeout _ -> ());
            if ann.version > soa.version_a.(slot) then begin
              soa.version_a.(slot) <- ann.version;
              note_match ()
            end
          end)

let death_draw t ~now r =
  match t.death with
  | Lifetime_fixed _ | Lifetime_exp _ -> false
  | Per_service p ->
      if Rng.bernoulli t.death_rng p then begin
        remove_record t ~now r;
        true
      end
      else false

let kill t ~now key =
  match Table.find t.table key with
  | Some r -> remove_record t ~now r
  | None -> ()

module Engine = Softstate_sim.Engine
module Rng = Softstate_util.Rng

type announcement = {
  key : Record.key;
  version : Record.version;
  seq : int;
}

type death_spec =
  | Per_service of float
  | Lifetime_fixed of float
  | Lifetime_exp of float

type expiry_spec =
  | No_expiry
  | Refresh_timeout of { multiple : float; sweep_period : float }

(* Per-receiver, per-key soft-state entry. [gap] is the scalable-timer
   estimate of the sender's refresh interval for this key (EWMA of
   observed inter-announcement gaps); [nan] until two announcements
   have been heard. *)
type entry = {
  mutable version : Record.version;
  mutable last_heard : float;
  mutable gap : float;
}

type t = {
  engine : Engine.t;
  arrival_rng : Rng.t;
  death_rng : Rng.t;
  update_rng : Rng.t;
  table : Table.t;
  receivers : (Record.key, entry) Hashtbl.t array;
  tracker : Consistency.t;
  workload : Workload.t;
  death : death_spec;
  expiry : expiry_spec;
  mutable next_key : int;
  mutable on_arrival : Record.t -> unit;
  mutable on_death : Record.t -> unit;
  mutable hooks_set : bool;
  mutable false_expiries : int;
  mutable stale_purged : int;
}

let validate_death = function
  | Per_service p ->
      if p <= 0.0 || p > 1.0 then
        invalid_arg "Base.create: per-service death probability in (0,1]"
  | Lifetime_fixed ttl | Lifetime_exp ttl ->
      if ttl <= 0.0 then invalid_arg "Base.create: lifetime must be positive"

let validate_expiry = function
  | No_expiry -> ()
  | Refresh_timeout { multiple; sweep_period } ->
      if multiple <= 1.0 then
        invalid_arg "Base.create: expiry multiple must exceed 1";
      if sweep_period <= 0.0 then
        invalid_arg "Base.create: sweep period must be positive"

let create ~engine ~rng ~workload ~death ?(receivers = 1)
    ?(expiry = No_expiry) ~tracker () =
  validate_death death;
  validate_expiry expiry;
  if receivers < 1 then invalid_arg "Base.create: receivers >= 1";
  if Consistency.receivers tracker <> receivers then
    invalid_arg "Base.create: tracker sized for a different group";
  { engine;
    arrival_rng = Rng.split rng;
    death_rng = Rng.split rng;
    update_rng = Rng.split rng;
    table = Table.create ();
    receivers = Array.init receivers (fun _ -> Hashtbl.create 256);
    tracker; workload; death; expiry; next_key = 0;
    on_arrival = ignore; on_death = ignore; hooks_set = false;
    false_expiries = 0; stale_purged = 0 }

let set_hooks t ~on_arrival ~on_death =
  t.on_arrival <- on_arrival;
  t.on_death <- on_death;
  t.hooks_set <- true

let engine t = t.engine
let table t = t.table
let tracker t = t.tracker
let workload t = t.workload
let receiver_count t = Array.length t.receivers
let false_expiries t = t.false_expiries
let stale_purged t = t.stale_purged

let receiver_map t receiver =
  if receiver < 0 || receiver >= Array.length t.receivers then
    invalid_arg "Base: receiver index out of range";
  t.receivers.(receiver)

let receiver_version t ~receiver key =
  match Hashtbl.find_opt (receiver_map t receiver) key with
  | Some e -> Some e.version
  | None -> None

let is_matching t ~receiver r =
  match Hashtbl.find_opt (receiver_map t receiver) r.Record.key with
  | Some e -> e.version = r.Record.version
  | None -> false

let matching_count t r =
  Array.fold_left
    (fun acc map ->
      match Hashtbl.find_opt map r.Record.key with
      | Some e when e.version = r.Record.version -> acc + 1
      | Some _ | None -> acc)
    0 t.receivers

let remove_record t ~now r =
  ignore (Table.remove t.table r.Record.key);
  let matching = matching_count t r in
  (* With expiry timers running, dead records linger in the receiver
     maps until their refresh timeout fires - soft-state garbage
     collection doing its job (counted by stale_purged). Without
     timers we drop them eagerly so nothing leaks. *)
  (match t.expiry with
  | No_expiry ->
      Array.iter (fun map -> Hashtbl.remove map r.Record.key) t.receivers
  | Refresh_timeout _ -> ());
  Consistency.on_death t.tracker ~now ~matching;
  t.on_death r

let schedule_expiry t r =
  let schedule_kill after =
    ignore
      (Engine.schedule t.engine ~after (fun engine ->
           (* The key may have died early (e.g. explicit kill in
              tests); remove_record is only called on live records. *)
           match Table.find t.table r.Record.key with
           | Some live -> remove_record t ~now:(Engine.now engine) live
           | None -> ()))
  in
  match t.death with
  | Per_service _ -> ()
  | Lifetime_fixed ttl -> schedule_kill ttl
  | Lifetime_exp mean ->
      schedule_kill
        (Softstate_util.Dist.exponential t.death_rng ~rate:(1.0 /. mean))

let arrival t =
  let now = Engine.now t.engine in
  let update_target =
    if Workload.is_update t.workload t.update_rng then
      Table.random_key t.table t.update_rng
    else None
  in
  match update_target with
  | Some key ->
      let r =
        match Table.find t.table key with
        | Some r -> r
        | None -> assert false
      in
      let matching = matching_count t r in
      Record.touch r ~now;
      Consistency.on_update t.tracker ~now ~matching;
      t.on_arrival r
  | None ->
      let key = t.next_key in
      t.next_key <- key + 1;
      let r = Record.make ~key ~now ~size_bits:t.workload.Workload.size_bits in
      Table.insert t.table r;
      Consistency.on_birth t.tracker ~now;
      schedule_expiry t r;
      t.on_arrival r

(* One expiry sweep over one receiver's soft state. A record is
   expired after [multiple] estimated refresh intervals of silence;
   without a gap estimate (heard fewer than twice) it is left alone. *)
let sweep_receiver t ~now ~multiple receiver =
  let map = t.receivers.(receiver) in
  let doomed =
    (* lint: allow D003 commutative: builds an unordered removal set; per-key expiry effects are independent *)
    Hashtbl.fold
      (fun key e acc ->
        if
          (not (Float.is_nan e.gap))
          && now -. e.last_heard > multiple *. e.gap
        then key :: acc
        else acc)
      map []
  in
  List.iter
    (fun key ->
      match Table.find t.table key with
      | Some r ->
          t.false_expiries <- t.false_expiries + 1;
          let was_matching = is_matching t ~receiver r in
          Hashtbl.remove map key;
          if was_matching then Consistency.on_unmatch t.tracker ~now
      | None ->
          t.stale_purged <- t.stale_purged + 1;
          Hashtbl.remove map key)
    doomed

let start t =
  if not t.hooks_set then failwith "Base.start: hooks not set";
  let rec tick engine =
    arrival t;
    ignore
      (Engine.schedule engine
         ~after:(Workload.next_interarrival t.workload t.arrival_rng)
         tick)
  in
  ignore
    (Engine.schedule t.engine
       ~after:(Workload.next_interarrival t.workload t.arrival_rng)
       tick);
  match t.expiry with
  | No_expiry -> ()
  | Refresh_timeout { multiple; sweep_period } ->
      let (_ : unit -> bool) =
        Engine.every t.engine ~period:sweep_period (fun engine ->
            let now = Engine.now engine in
            for receiver = 0 to Array.length t.receivers - 1 do
              sweep_receiver t ~now ~multiple receiver
            done)
      in
      ()

let announce_of t ~seq r =
  Consistency.on_transmission t.tracker
    ~redundant:(matching_count t r = Array.length t.receivers);
  { key = r.Record.key; version = r.Record.version; seq }

let deliver t ~now ~receiver ann =
  (* Announcements of dead keys are absorbed without storing: a real
     subscriber would cache and expire them, with no effect on the
     consistency metric (only live keys count); dropping them here
     keeps the receiver maps bounded by the live set. *)
  match Table.find t.table ann.key with
  | None -> ()
  | Some r -> (
      let map = receiver_map t receiver in
      let note_match () =
        if r.Record.version = ann.version then begin
          Consistency.on_match t.tracker ~now;
          (* latency is sampled once per version, at its first arrival
             anywhere in the group *)
          if matching_count t r = 1 then
            Consistency.on_first_delivery t.tracker ~now ~born:r.Record.born
        end
      in
      match Hashtbl.find_opt map ann.key with
      | None ->
          Hashtbl.replace map ann.key
            { version = ann.version; last_heard = now; gap = nan };
          note_match ()
      | Some e ->
          (* scalable-timers gap estimation: EWMA of observed
             inter-announcement gaps, gain 0.25 *)
          let observed = now -. e.last_heard in
          e.gap <-
            (if Float.is_nan e.gap then observed
             else (0.25 *. observed) +. (0.75 *. e.gap));
          e.last_heard <- now;
          if ann.version > e.version then begin
            e.version <- ann.version;
            note_match ()
          end)

let death_draw t ~now r =
  match t.death with
  | Lifetime_fixed _ | Lifetime_exp _ -> false
  | Per_service p ->
      if Rng.bernoulli t.death_rng p then begin
        remove_record t ~now r;
        true
      end
      else false

let kill t ~now key =
  match Table.find t.table key with
  | Some r -> remove_record t ~now r
  | None -> ()

(** Two-level transmission scheduling: hot and cold queues (paper §4).

    New (and freshly updated) records are announced from the "hot"
    foreground queue; once transmitted at least once they circulate in
    the "cold" background queue. The data bandwidth is shared between
    the two proportionally to [mu_hot : mu_cold] by a pluggable
    proportional-share scheduler (lottery / stride / WFQ / DRR), never
    strict priority, so cold items cannot starve. Unused hot
    bandwidth flows to the cold queue because scheduling is
    work-conserving. *)

type t

val create :
  base:Base.t ->
  mu_hot_bps:float ->
  mu_cold_bps:float ->
  ?sched:Softstate_sched.Scheduler.algorithm ->
  ?obs:Softstate_obs.Obs.t ->
  ?transport:Softstate_net.Transport.t ->
  loss:Softstate_net.Loss.t ->
  link_rng:Softstate_util.Rng.t ->
  unit ->
  t
(** The link rate is [mu_hot_bps +. mu_cold_bps]; the two values also
    serve as the scheduler weights. [sched] defaults to stride. The
    data channel is created through [transport] (default
    {!Softstate_net.Transport.single_hop}). With [obs] the link is
    instrumented as ["two_queue.data"], hot sends emit [Announce],
    cold sends [Refresh], and NACK reheats [Repair]. Announce/Refresh
    events carry the record key and the announcement sequence number
    (which doubles as the packet correlation id); [Repair] events link
    back to the lost sequence via their causal parent. *)

val hot_length : t -> int
val cold_length : t -> int
val sent_hot : t -> int
val sent_cold : t -> int
val sent : t -> int
val unicast : t -> Softstate_net.Transport.unicast

(**/**)

(** Internal surface shared with {!Feedback}; subject to change. *)

val create_queues :
  base:Base.t ->
  mu_hot_bps:float ->
  mu_cold_bps:float ->
  ?sched:Softstate_sched.Scheduler.algorithm ->
  ?obs:Softstate_obs.Obs.t ->
  sched_rng:Softstate_util.Rng.t ->
  unit ->
  t
(** Queue machinery and base hooks only; the caller must build a
    channel around {!fetch_packet}/{!serve_completion} and
    {!attach_unicast} it. *)

val attach_unicast : t -> Softstate_net.Transport.unicast -> unit

val attach_kick : t -> (unit -> unit) -> unit
(** For media other than a unicast handle (e.g. a multicast fanout):
    register how to wake the medium when work arrives. *)

val reheat :
  t -> now:float -> ?cause:int -> Record.key -> bool
(** Move a cold record to the hot queue (NACK response); [false] if
    the key is dead or already hot. [cause] is the sequence number of
    the lost announcement that triggered the repair; it is recorded as
    the causal parent of the [Repair] trace event (default
    {!Softstate_obs.Trace.no_id}). *)

val serve_completion : t -> now:float -> Record.key -> unit
val fetch_packet : t -> Base.announcement Softstate_net.Packet.t option
val wake : t -> unit

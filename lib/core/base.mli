(** State and bookkeeping shared by every announce/listen variant.

    A base instance owns the publisher table, the subscriber copies
    (one per receiver; single-receiver protocols use receiver 0), the
    consistency tracker and the update/death processes. Protocol
    modules ({!Open_loop}, {!Two_queue}, {!Feedback}, {!Multicast})
    supply only their queueing/scheduling structure through the two
    hooks. *)

type announcement = {
  key : Record.key;
  version : Record.version;
  seq : int;  (** channel sequence number, stamped by the protocol *)
}

(** How records leave the live set (paper §2: "each record is also
    associated with a lifetime"). The analytic model of §3
    approximates expiry with a fixed per-service death probability;
    the simulation studies need genuinely bounded lifetimes or the
    live set is unstable whenever λ/p_d exceeds the channel rate. *)
type death_spec =
  | Per_service of float
      (** Bernoulli(p_d) at every service completion — Table 1 *)
  | Lifetime_fixed of float
      (** deterministic time-to-live from insertion, seconds *)
  | Lifetime_exp of float
      (** exponentially distributed lifetime with the given mean *)

(** Receiver-side soft-state expiry: the operational definition of
    soft state from the paper's introduction ("a pending timer ...
    reset upon receipt of each refresh message"). Timeouts follow the
    scalable-timers approach (Sharma et al., discussed in §7): each
    receiver estimates the per-record refresh interval with an EWMA of
    observed gaps and expires a record after [multiple] estimated
    intervals of silence. Records heard only once are not expired (no
    gap estimate yet) — the death process or explicit withdrawal
    covers them.

    Two implementations share those semantics. {!Refresh_timeout} is
    the historical periodic sweep: O(keys) per sweep_period, expiry
    observed at the first scan after the deadline (strict [>] test),
    dead-at-sender copies lingering in receiver maps until swept.
    {!Refresh_wheel} arms one hierarchical timing-wheel timer per
    (receiver, key) and is O(1) amortised per event: expiry fires at
    the deadline itself ([now - last_heard >= multiple * gap]), and
    dead-at-sender copies are reclaimed when the sender's slot is
    recycled, with the orphaned timer firing counted as
    {!stale_purged}. The wheel variant runs on flat struct-of-arrays
    receiver state, so per-copy memory is a few words instead of a
    Hashtbl binding. *)
type expiry_spec =
  | No_expiry
  | Refresh_timeout of {
      multiple : float;      (** timeout = multiple × estimated gap *)
      sweep_period : float;  (** how often receivers scan for silence *)
    }
  | Refresh_wheel of {
      multiple : float;      (** timeout = multiple × estimated gap *)
    }

val expiry_to_string : expiry_spec -> string
(** Round-trippable text form: ["none"], ["refresh:M:P"] or
    ["wheel:M"], floats rendered exactly ([%.17g]). *)

val expiry_of_string : string -> (expiry_spec, string) result
(** Inverse of {!expiry_to_string}; also accepts ["sweep:M:P"] as an
    alias for ["refresh:M:P"]. *)

type t

val create :
  engine:Softstate_sim.Engine.t ->
  rng:Softstate_util.Rng.t ->
  workload:Workload.t ->
  death:death_spec ->
  ?receivers:int ->
  ?expiry:expiry_spec ->
  tracker:Consistency.t ->
  unit ->
  t
(** [rng] is split internally into independent arrival, death and
    update streams. [receivers] defaults to 1 and must match the
    tracker's. [expiry] defaults to {!No_expiry}. *)

val set_hooks :
  t -> on_arrival:(Record.t -> unit) -> on_death:(Record.t -> unit) -> unit
(** [on_arrival] fires for inserts and for updates of an existing key
    (protocols typically (re)queue the record hot); [on_death] fires
    when the death process kills a record, so protocols can purge
    their queues lazily or eagerly. Must be set before {!start}. *)

val start : t -> unit
(** Begin the Poisson update process (and expiry sweeps, if any). *)

val engine : t -> Softstate_sim.Engine.t
val table : t -> Table.t
val tracker : t -> Consistency.t
val workload : t -> Workload.t
val receiver_count : t -> int

val receiver_version : t -> receiver:int -> Record.key -> Record.version option
(** The subscriber's stored version for the key, if any. *)

val is_matching : t -> receiver:int -> Record.t -> bool
(** Whether that subscriber currently holds the record's version. *)

val matching_count : t -> Record.t -> int
(** Number of receivers holding the record's current version. *)

val announce_of : t -> seq:int -> Record.t -> announcement
(** Build the wire announcement for a record's current version and
    count the transmission (redundant iff every receiver already
    matches). *)

val deliver : t -> now:float -> receiver:int -> announcement -> unit
(** Subscriber-side receipt: store the version if newer, update the
    tracker, refresh the expiry timer, and sample receive latency on
    the first arrival of the sender's current version at any receiver.
    Stale or dead-key announcements are absorbed silently — that is
    soft state. *)

val death_draw : t -> now:float -> Record.t -> bool
(** Called by protocols at service completion. Under {!Per_service}
    this is the Bernoulli(p_d) draw: on death the record leaves the
    table, the tracker is told, and [on_death] fires. Under the
    lifetime specs it never kills (expiry timers do) and returns
    [false]. *)

val kill : t -> now:float -> Record.key -> unit
(** Explicitly expire a key (used by lifetime-based workloads and
    tests). No-op if not live. *)

val false_expiries : t -> int
(** Receiver-side expiries of records that were still live at the
    sender — consistency lost to an over-eager timeout. *)

val stale_purged : t -> int
(** Receiver-side expiries of records already dead at the sender —
    the garbage collection soft state is supposed to provide. *)

module Engine = Softstate_sim.Engine
module Net = Softstate_net
module Sched = Softstate_sched
module Obs = Softstate_obs.Obs
module Trace = Softstate_obs.Trace

(* Queue entries are (key, generation): a record's generation counter
   advances every time it is (re)enqueued, so an entry is valid only if
   it carries the record's current generation. This gives O(1) lazy
   removal when records die, are updated out of the cold queue, or are
   reheated by a NACK — no record is ever queued twice validly. *)

type temp = Hot | Cold | In_service

type info = {
  mutable temp : temp;
  mutable gen : int;
}

type t = {
  base : Base.t;
  hot : (Record.key * int) Queue.t;
  cold : (Record.key * int) Queue.t;
  info : (Record.key, info) Hashtbl.t;
  sched : Sched.Scheduler.t;
  hot_flow : Sched.Scheduler.flow;
  cold_flow : Sched.Scheduler.flow;
  trace : Trace.t;
  traced : bool; (* Trace.enabled, hoisted to creation time *)
  mutable seq : int;
  mutable sent_hot : int;
  mutable sent_cold : int;
  mutable unicast : Net.Transport.unicast option;
  mutable kick_fn : unit -> unit;
  mutable kick_attached : bool;
}

let valid_entry t kind (key, gen) =
  match Hashtbl.find_opt t.info key with
  | None -> false
  | Some info -> info.gen = gen && info.temp = kind

(* Discard stale heads so backlog status reflects real work. *)
let purge t kind queue =
  let rec loop () =
    match Queue.peek_opt queue with
    | Some entry when not (valid_entry t kind entry) ->
        ignore (Queue.pop queue);
        loop ()
    | Some _ | None -> ()
  in
  loop ()

let enqueue t r temp =
  let key = r.Record.key in
  let info =
    match Hashtbl.find_opt t.info key with
    | Some info -> info
    | None ->
        let info = { temp; gen = 0 } in
        Hashtbl.replace t.info key info;
        info
  in
  info.gen <- info.gen + 1;
  info.temp <- temp;
  let entry = (key, info.gen) in
  match temp with
  | Hot -> Queue.add entry t.hot
  | Cold -> Queue.add entry t.cold
  | In_service -> invalid_arg "Two_queue.enqueue: In_service"

let refresh_backlog t =
  purge t Hot t.hot;
  purge t Cold t.cold;
  Sched.Scheduler.set_backlogged t.sched t.hot_flow (not (Queue.is_empty t.hot));
  Sched.Scheduler.set_backlogged t.sched t.cold_flow
    (not (Queue.is_empty t.cold))

let fetch_packet t =
  refresh_backlog t;
  match Sched.Scheduler.select t.sched with
  | None -> None
  | Some flow ->
      let queue = if flow = t.hot_flow then t.hot else t.cold in
      let key, _gen =
        (* purge guaranteed a valid head for the selected queue *)
        Queue.pop queue
      in
      let r =
        match Table.find (Base.table t.base) key with
        | Some r -> r
        | None -> assert false (* valid entries refer to live records *)
      in
      (match Hashtbl.find_opt t.info key with
      | Some info -> info.temp <- In_service
      | None -> assert false);
      Sched.Scheduler.charge t.sched flow (float_of_int r.Record.size_bits);
      let hot = flow = t.hot_flow in
      if hot then t.sent_hot <- t.sent_hot + 1
      else t.sent_cold <- t.sent_cold + 1;
      let seq = t.seq in
      t.seq <- seq + 1;
      if t.traced then
        Trace.emit t.trace
          (Trace.event
             ~time:(Engine.now (Base.engine t.base))
             ~src:"two_queue" ~detail:(string_of_int key)
             ~key ~packet:seq
             (if hot then Trace.Announce else Trace.Refresh));
      let ann = Base.announce_of t.base ~seq r in
      Some (Net.Packet.make ~id:seq ~size_bits:r.Record.size_bits ann)

let wake t = t.kick_fn ()

let serve_completion t ~now key =
  match Table.find (Base.table t.base) key with
  | None -> Hashtbl.remove t.info key
  | Some r ->
      if Base.death_draw t.base ~now r then ()
        (* on_death hook already dropped the info entry *)
      else begin
        (* After a transmission the record settles in the cold queue
           for background refreshes — unless an update or a NACK
           re-queued it hot while it was in service. *)
        (match Hashtbl.find_opt t.info key with
        | Some info when info.temp = In_service -> enqueue t r Cold
        | Some _ | None -> ());
        wake t
      end

let reheat t ~now ?(cause = Trace.no_id) key =
  match Table.find (Base.table t.base) key, Hashtbl.find_opt t.info key with
  | Some r, Some info when info.temp = Cold ->
      enqueue t r Hot;
      if t.traced then
        Trace.emit t.trace
          (Trace.event ~time:now ~src:"two_queue"
             ~detail:(string_of_int key) ~key ~parent:cause Trace.Repair);
      wake t;
      true
  | _ -> false

let create_queues ~base ~mu_hot_bps ~mu_cold_bps
    ?(sched = Sched.Scheduler.Stride) ?obs ~sched_rng () =
  if mu_hot_bps <= 0.0 || mu_cold_bps <= 0.0 then
    invalid_arg "Two_queue.create: rates must be positive";
  let scheduler = Sched.Scheduler.create ~rng:sched_rng sched in
  let hot_flow = Sched.Scheduler.add_flow scheduler ~weight:mu_hot_bps in
  let cold_flow = Sched.Scheduler.add_flow scheduler ~weight:mu_cold_bps in
  let t =
    { base; hot = Queue.create (); cold = Queue.create ();
      info = Hashtbl.create 256; sched = scheduler; hot_flow; cold_flow;
      trace = Obs.trace_of obs; traced = Trace.enabled (Obs.trace_of obs);
      seq = 0; sent_hot = 0; sent_cold = 0; unicast = None; kick_fn = ignore;
      kick_attached = false }
  in
  Base.set_hooks base
    ~on_arrival:(fun r ->
      (* Inserts and updates are both "new data": they go hot. An
         already-hot record just keeps its place (the announcement
         will carry the latest version anyway). *)
      (match Hashtbl.find_opt t.info r.Record.key with
      | Some info when info.temp = Hot -> ()
      | Some _ | None -> enqueue t r Hot);
      wake t)
    ~on_death:(fun r -> Hashtbl.remove t.info r.Record.key);
  t

let attach_kick t kick =
  if t.kick_attached then
    invalid_arg "Two_queue.attach_kick: already attached";
  t.kick_attached <- true;
  t.kick_fn <- kick

let attach_unicast t unicast =
  if t.unicast <> None then
    invalid_arg "Two_queue.attach_unicast: already attached";
  t.unicast <- Some unicast;
  attach_kick t (fun () -> unicast.Net.Transport.u_kick ())

let create ~base ~mu_hot_bps ~mu_cold_bps ?sched ?obs ?transport ~loss
    ~link_rng () =
  let transport =
    match transport with
    | Some tr -> tr
    | None -> Net.Transport.single_hop ?obs (Base.engine base)
  in
  let sched_rng = Softstate_util.Rng.split link_rng in
  let t =
    create_queues ~base ~mu_hot_bps ~mu_cold_bps ?sched ?obs ~sched_rng ()
  in
  let unicast =
    transport.Net.Transport.unicast
      ~rate_bps:(mu_hot_bps +. mu_cold_bps)
      ~loss
      ~on_served:(fun ~now packet ->
        serve_completion t ~now packet.Net.Packet.payload.Base.key)
      ~label:"two_queue.data"
      ~rng:link_rng
      ~fetch:(fun () -> fetch_packet t)
      ~deliver:(fun ~now ann -> Base.deliver t.base ~now ~receiver:0 ann)
      ()
  in
  attach_unicast t unicast;
  t

let hot_length t =
  purge t Hot t.hot;
  Queue.length t.hot

let cold_length t =
  purge t Cold t.cold;
  Queue.length t.cold

let sent_hot t = t.sent_hot
let sent_cold t = t.sent_cold
let sent t = t.seq
let unicast t = match t.unicast with Some u -> u | None -> assert false

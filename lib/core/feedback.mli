(** Announce/listen with receiver feedback (paper §5, Figure 7).

    The sender runs the {!Two_queue} hot/cold machinery; the receiver
    detects losses as gaps in the data-channel sequence numbers and
    returns NACKs over a separate feedback channel of rate [mu_fb].
    A NACK moves the named record from the cold queue to the tail of
    the hot queue, so hot bandwidth serves new data {e and} requested
    repairs while cold bandwidth covers late joiners and lost NACKs.

    The feedback channel is itself lossy and has a bounded queue:
    when [mu_fb] is too small the NACK queue overflows and repairs
    degrade gracefully to the cold-retransmission path; when [mu_fb]
    eats into the data bandwidth the data queues saturate — the two
    sides of Figure 8's collapse. *)

type t

val create :
  base:Base.t ->
  mu_hot_bps:float ->
  mu_cold_bps:float ->
  mu_fb_bps:float ->
  ?sched:Softstate_sched.Scheduler.algorithm ->
  ?obs:Softstate_obs.Obs.t ->
  ?transport:Softstate_net.Transport.t ->
  ?nack_bits:int ->
  ?fb_queue_capacity:int ->
  ?fb_loss:Softstate_net.Loss.t ->
  loss:Softstate_net.Loss.t ->
  link_rng:Softstate_util.Rng.t ->
  unit ->
  t
(** [nack_bits] defaults to 256; [fb_loss] defaults to the same mean
    as [loss] would suggest — pass it explicitly for asymmetric
    channels; default is lossless feedback as in the paper's
    single-receiver simulations. *)

val sender : t -> Two_queue.t
val nacks_sent : t -> int
(** NACKs the receiver handed to the feedback channel. *)

val nacks_delivered : t -> int
(** NACKs that reached the sender. *)

val nacks_dropped_overflow : t -> int
(** NACKs lost to feedback-queue overflow (bandwidth starvation). *)

val fb_stats : t -> Softstate_net.Link.Stats.t
(** First-hop counters of the feedback channel (sent / delivered /
    dropped) — the conservation-oracle reading. *)

val reheats : t -> int
(** NACKs that actually moved a record back to the hot queue. *)

(* Round-synchronous epidemic dissemination over a flat substrate.

   The paper's announce/listen machinery pushes one sender's table to
   listeners; gossip is the many-to-many complement (Bakhshi et al.,
   arXiv:1105.5986): each round, every infected node pushes the rumour
   to [fanout] uniformly-drawn peers (push), and optionally every
   susceptible node pulls from [fanout] peers (push-pull). The
   infected fraction c(t) then follows a mean-field recurrence whose
   fluid limit {!fluid} integrates — the analytic cross-check for the
   discrete-event trajectory, as lib/queueing is for Figures 3/4.

   Engine integration is round-batched: ONE calendar event per round
   sweeps every transmission with plain array reads/writes — no
   closure, packet record or queue cell per contact — which is what
   lets 10^6-node populations run within memory. The per-node state
   is two int arrays:

   - [order]: nodes in infection order (a preallocated pool — slot
     [i] is the i-th infection, written once);
   - [rank]: node -> its index in [order], [max_int] if susceptible.

   "Infected at the start of round r" is [rank.(v) < active] where
   [active] is the infection count when the round opened, so
   round-synchronous semantics need no per-round copying.

   Determinism: one SplitMix64 stream drawn in a fixed order (push
   phase over infected nodes in infection order, then pull phase over
   susceptible nodes ascending), neighbours observed through the
   substrate's sorted-adjacency contract. The [digest] field folds
   the full infection sequence (node ids in infection order plus
   round boundaries) through a 64-bit mix, so two runs agree on the
   digest iff they agree on the entire delivery trace — the golden
   pins and the flat-vs-object equivalence test both hang off it. *)

module Rng = Softstate_util.Rng
module Flat = Softstate_net.Flat_topology
module Engine = Softstate_sim.Engine
module Obs = Softstate_obs.Obs
module Metrics = Softstate_obs.Metrics
module Trace = Softstate_obs.Trace
module Profiler = Softstate_obs.Profiler

type mode = Push | Push_pull

let mode_name = function Push -> "push" | Push_pull -> "push-pull"

type peers =
  | Uniform of int
  | Mesh of Flat.t
  | View of {
      view_nodes : int;
      view_degree : int -> int;
      view_neighbor : int -> int -> int;
    }

type config = {
  seed : int;
  mode : mode;
  fanout : int;
  loss : float;
  round_period : float;
  max_rounds : int;
  initial : int;
  target_fraction : float;
}

let default =
  { seed = 1;
    mode = Push;
    fanout = 1;
    loss = 0.0;
    round_period = 1.0;
    max_rounds = 64;
    initial = 1;
    target_fraction = 1.0 }

type result = {
  nodes : int;
  rounds : int;
  infected : int;
  transmissions : int;
  deliveries : int;
  redundant : int;
  misses : int;
  lost : int;
  blackholed : int;
  digest : string;
  series : (float * float) array;
}

(* ------------------------------------------------------------------ *)
(* Delivery-trace digest: SplitMix64 finaliser folded over the
   infection sequence. *)

let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let digest_step h x =
  mix64 (Int64.logxor (Int64.mul h 6364136223846793005L) (Int64.of_int x))

(* ------------------------------------------------------------------ *)

(* Internal adjacency view: every peer source reduces to this. *)
type view = {
  vn : int;
  vdeg : int -> int;
  vnbr : int -> int -> int;
  vup : int -> bool;           (* node may gossip / be infected *)
  vok : int -> int -> bool;    (* src -> k -> transmission not blackholed *)
}

let always_up _ = true
let always_ok _ _ = true

let view_of = function
  | Uniform n ->
      if n < 1 then invalid_arg "Gossip: uniform population must be >= 1";
      (* complete-graph mixing without materialising O(N^2) edges *)
      { vn = n;
        vdeg = (fun _ -> n - 1);
        vnbr = (fun u k -> if k >= u then k + 1 else k);
        vup = always_up;
        vok = always_ok }
  | Mesh f ->
      { vn = Flat.node_count f;
        vdeg = Flat.degree f;
        vnbr = Flat.neighbor f;
        vup = Flat.is_node_up f;
        vok =
          (fun u k ->
            Flat.is_cable_up f (Flat.neighbor_cable f u k)
            && Flat.is_node_up f (Flat.neighbor f u k)) }
  | View { view_nodes; view_degree; view_neighbor } ->
      { vn = view_nodes;
        vdeg = view_degree;
        vnbr = view_neighbor;
        vup = always_up;
        vok = always_ok }

let validate config =
  if config.fanout < 1 then invalid_arg "Gossip: fanout must be >= 1";
  if config.initial < 1 then invalid_arg "Gossip: initial must be >= 1";
  if config.max_rounds < 0 then invalid_arg "Gossip: max_rounds must be >= 0";
  if not (config.round_period > 0.0) then
    invalid_arg "Gossip: round_period must be > 0";
  if Float.is_nan config.loss || config.loss < 0.0 || config.loss > 1.0 then
    invalid_arg "Gossip: loss outside [0, 1]";
  if
    Float.is_nan config.target_fraction
    || config.target_fraction <= 0.0
    || config.target_fraction > 1.0
  then invalid_arg "Gossip: target_fraction outside (0, 1]"

let run ?obs ?engine config peers =
  validate config;
  let v = view_of peers in
  let n = v.vn in
  let own_engine, engine =
    match engine with
    | Some e -> (false, e)
    | None -> (true, Engine.create ())
  in
  let rng = Rng.create config.seed in
  let order = Array.make n 0 in
  let rank = Array.make n max_int in
  let count = ref 0 in
  let infect u =
    order.(!count) <- u;
    rank.(u) <- !count;
    incr count
  in
  let digest = ref (Int64.of_int config.seed) in
  let initial = min config.initial n in
  for u = 0 to initial - 1 do
    infect u;
    digest := digest_step !digest u
  done;
  let target =
    max initial
      (min n (int_of_float (ceil (config.target_fraction *. float_of_int n))))
  in
  let transmissions = ref 0 in
  let deliveries = ref 0 in
  let redundant = ref 0 in
  let misses = ref 0 in
  let lost = ref 0 in
  let blackholed = ref 0 in
  let rounds = ref 0 in
  let series = Array.make (config.max_rounds + 1) (0.0, 0.0) in
  let now0 = Engine.now engine in
  let frac () = float_of_int !count /. float_of_int n in
  series.(0) <- (now0, frac ());
  (* observability: probes read the live counters; one Custom "round"
     trace event per round (never Packet_* kinds — those belong to
     the link-level conservation identity) *)
  let trace = Obs.trace_of obs in
  (match obs with
  | None -> ()
  | Some obs ->
      let m = Obs.metrics obs in
      Metrics.probe m "gossip.infected" (fun ~now:_ -> float_of_int !count);
      Metrics.probe m "gossip.infected_fraction" (fun ~now:_ -> frac ());
      Metrics.probe m "gossip.rounds" (fun ~now:_ -> float_of_int !rounds);
      Metrics.probe m "gossip.transmissions" (fun ~now:_ ->
          float_of_int !transmissions);
      Metrics.probe m "gossip.deliveries" (fun ~now:_ ->
          float_of_int !deliveries);
      Metrics.probe m "gossip.redundant" (fun ~now:_ ->
          float_of_int !redundant);
      Metrics.probe m "gossip.misses" (fun ~now:_ -> float_of_int !misses);
      Metrics.probe m "gossip.lost" (fun ~now:_ -> float_of_int !lost);
      Metrics.probe m "gossip.blackholed" (fun ~now:_ ->
          float_of_int !blackholed);
      Profiler.attach_alloc_probes (Obs.profiler obs) m ~label:"gossip"
        ~sim0:now0);
  let loss = config.loss in
  let lossy = loss > 0.0 in
  (* one contact: u offers the rumour along its k-th incident edge *)
  let contact u infected_cutoff =
    incr transmissions;
    let d = v.vdeg u in
    if d <= 0 then incr misses
    else begin
      let k = Rng.int rng d in
      if not (v.vok u k) then incr blackholed
      else if lossy && Rng.bernoulli rng loss then incr lost
      else begin
        let w = v.vnbr u k in
        if infected_cutoff < 0 then
          (* push: u is infected; w either learns or already knew *)
          if rank.(w) < max_int then incr redundant
          else begin
            infect w;
            incr deliveries;
            digest := digest_step !digest w
          end
        else if
          (* pull: u was susceptible at round start; w can answer only
             if it was infected at round start *)
          rank.(w) < infected_cutoff
        then
          if rank.(u) < max_int then incr redundant
          else begin
            infect u;
            incr deliveries;
            digest := digest_step !digest u
          end
        else incr misses
      end
    end
  in
  let round () =
    let active = !count in
    (* push phase: infected nodes in infection order *)
    for idx = 0 to active - 1 do
      let u = order.(idx) in
      if v.vup u then
        for _ = 1 to config.fanout do
          contact u (-1)
        done
    done;
    (match config.mode with
    | Push -> ()
    | Push_pull ->
        (* pull phase: nodes susceptible at round start, ascending *)
        for u = 0 to n - 1 do
          if rank.(u) >= active && v.vup u then
            for _ = 1 to config.fanout do
              contact u active
            done
        done);
    incr rounds;
    digest := digest_step !digest (-(!rounds));
    series.(!rounds) <- (Engine.now engine, frac ());
    if Trace.enabled trace then
      Trace.emit trace
        (Trace.event ~time:(Engine.now engine) ~src:"gossip" ~value:(frac ())
           ~key:!rounds (Trace.Custom "round"))
  in
  let rec schedule_round () =
    if !rounds < config.max_rounds && !count < target then
      ignore
        (Engine.schedule engine ~after:config.round_period (fun _ ->
             round ();
             schedule_round ()))
  in
  schedule_round ();
  if own_engine then Engine.run engine
  else begin
    (* shared engine: drive it ourselves only up to the last round we
       could possibly schedule, leaving the caller's later events *)
    Engine.run
      ~until:(now0 +. (config.round_period *. float_of_int config.max_rounds))
      engine
  end;
  { nodes = n;
    rounds = !rounds;
    infected = !count;
    transmissions = !transmissions;
    deliveries = !deliveries;
    redundant = !redundant;
    misses = !misses;
    lost = !lost;
    blackholed = !blackholed;
    digest = Printf.sprintf "%016Lx" !digest;
    series = Array.sub series 0 (!rounds + 1) }

(* ------------------------------------------------------------------ *)
(* Fluid mode: the mean-field recurrence for the infected fraction.

   Push: an infected node makes [fanout] uniform contacts, each
   surviving loss with probability (1 - loss); a susceptible node
   receives Poisson(beta x) infecting contacts with
   beta = fanout (1 - loss), so it stays susceptible with exp(-beta x).

   Push-pull adds the susceptible node's own pulls: each of its
   [fanout] contacts fails to infect it with 1 - (1 - loss) x,
   multiplying the survival by (1 - (1 - loss) x)^fanout.

   The discrete-event trajectory converges to this map as N grows
   (fluctuations are O(1/sqrt N) per round); the convergence test in
   test_core pins the tolerance at N = 10^4. *)

let fluid_step config x =
  let f = float_of_int config.fanout in
  let beta = f *. (1.0 -. config.loss) in
  let survive_push = exp (-.beta *. x) in
  let survive =
    match config.mode with
    | Push -> survive_push
    | Push_pull ->
        survive_push *. ((1.0 -. ((1.0 -. config.loss) *. x)) ** f)
  in
  x +. ((1.0 -. x) *. (1.0 -. survive))

let fluid ?rounds config ~nodes =
  validate config;
  if nodes < 1 then invalid_arg "Gossip.fluid: nodes must be >= 1";
  let rounds =
    match rounds with Some r -> max 0 r | None -> config.max_rounds
  in
  let x0 = float_of_int (min config.initial nodes) /. float_of_int nodes in
  let out = Array.make (rounds + 1) (0.0, x0) in
  let x = ref x0 in
  for r = 1 to rounds do
    x := fluid_step config !x;
    out.(r) <- (config.round_period *. float_of_int r, !x)
  done;
  out

module Engine = Softstate_sim.Engine
module Net = Softstate_net
module Obs = Softstate_obs.Obs
module Trace = Softstate_obs.Trace

(* Circulation status of a live record. A record is always exactly one
   of: queued, in service, or dead — so updates never need to enqueue
   (the next announcement of the circulating record carries the bumped
   version), matching the single-queue analytic model. *)
type status = Queued | In_service

type t = {
  base : Base.t;
  queue : Record.key Queue.t;
  status : (Record.key, status) Hashtbl.t;
  trace : Trace.t;
  traced : bool; (* Trace.enabled, hoisted to creation time *)
  mutable seq : int;
  mutable unicast : Net.Transport.unicast option;
}

let rec fetch t () =
  match Queue.take_opt t.queue with
  | None -> None
  | Some key -> (
      match Table.find (Base.table t.base) key with
      | None ->
          Hashtbl.remove t.status key;
          fetch t () (* killed while queued; skip *)
      | Some r ->
          Hashtbl.replace t.status key In_service;
          let seq = t.seq in
          t.seq <- seq + 1;
          if t.traced then
            Trace.emit t.trace
              (Trace.event
                 ~time:(Engine.now (Base.engine t.base))
                 ~src:"open_loop" ~detail:(string_of_int key)
                 ~key ~packet:seq Trace.Announce);
          let ann = Base.announce_of t.base ~seq r in
          Some (Net.Packet.make ~id:seq ~size_bits:r.Record.size_bits ann))

let on_served t ~now (packet : Base.announcement Net.Packet.t) =
  let key = packet.Net.Packet.payload.Base.key in
  match Table.find (Base.table t.base) key with
  | None -> Hashtbl.remove t.status key
  | Some r ->
      if Base.death_draw t.base ~now r then Hashtbl.remove t.status key
      else begin
        (* Survived: circulate for the next periodic announcement. *)
        Hashtbl.replace t.status key Queued;
        Queue.add key t.queue;
        match t.unicast with Some u -> u.Net.Transport.u_kick () | None -> ()
      end

let create ~base ~mu_data_bps ?obs ?transport ~loss ~link_rng () =
  let transport =
    match transport with
    | Some tr -> tr
    | None -> Net.Transport.single_hop ?obs (Base.engine base)
  in
  let t =
    { base; queue = Queue.create (); status = Hashtbl.create 256;
      trace = Obs.trace_of obs; traced = Trace.enabled (Obs.trace_of obs); seq = 0; unicast = None }
  in
  let unicast =
    transport.Net.Transport.unicast ~rate_bps:mu_data_bps ~loss
      ~on_served:(fun ~now packet -> on_served t ~now packet)
      ~label:"open_loop.data"
      ~rng:link_rng
      ~fetch:(fetch t)
      ~deliver:(fun ~now ann -> Base.deliver base ~now ~receiver:0 ann)
      ()
  in
  t.unicast <- Some unicast;
  Base.set_hooks base
    ~on_arrival:(fun r ->
      let key = r.Record.key in
      if not (Hashtbl.mem t.status key) then begin
        Hashtbl.replace t.status key Queued;
        Queue.add key t.queue
      end;
      unicast.Net.Transport.u_kick ())
    ~on_death:(fun r -> Hashtbl.remove t.status r.Record.key);
  t

let queue_length t = Queue.length t.queue

let unicast t = match t.unicast with Some u -> u | None -> assert false

let sent t = t.seq

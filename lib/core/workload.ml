module Rng = Softstate_util.Rng
module Dist = Softstate_util.Dist

type shape =
  | Poisson
  | Flash_crowd of {
      mult : float;
      period : float;
      dwell : float;
      zipf_s : float;
    }

let validate_shape = function
  | Poisson -> ()
  | Flash_crowd { mult; period; dwell; zipf_s } ->
      if mult <= 0.0 then
        invalid_arg "Workload: flash-crowd mult must be positive";
      if period <= 0.0 then
        invalid_arg "Workload: flash-crowd period must be positive";
      if dwell < 0.0 || dwell > period then
        invalid_arg "Workload: flash-crowd dwell must lie in [0, period]";
      if zipf_s < 0.0 then
        invalid_arg "Workload: flash-crowd zipf_s must be non-negative"

type t = {
  arrival_rate : float;
  size_bits : int;
  update_fraction : float;
  shape : shape;
}

let create ?(update_fraction = 0.0) ?(shape = Poisson) ~arrival_rate
    ~size_bits () =
  if arrival_rate <= 0.0 then
    invalid_arg "Workload.create: arrival rate must be positive";
  if size_bits <= 0 then invalid_arg "Workload.create: size must be positive";
  if update_fraction < 0.0 || update_fraction > 1.0 then
    invalid_arg "Workload.create: update fraction out of [0,1]";
  validate_shape shape;
  { arrival_rate; size_bits; update_fraction; shape }

let of_kbps ?update_fraction ?shape ~lambda_kbps ~size_bits () =
  if lambda_kbps <= 0.0 then
    invalid_arg "Workload.of_kbps: lambda must be positive";
  create ?update_fraction ?shape
    ~arrival_rate:(lambda_kbps *. 1000.0 /. float_of_int size_bits)
    ~size_bits ()

let lambda_bps t = t.arrival_rate *. float_of_int t.size_bits
let shape t = t.shape

let next_interarrival t rng = Dist.exponential rng ~rate:t.arrival_rate

let next_interarrival_at t ~now rng =
  match t.shape with
  | Poisson ->
      (* identical draw sequence to [next_interarrival]: one uniform *)
      Dist.exponential rng ~rate:t.arrival_rate
  | Flash_crowd { mult; period; dwell; _ } ->
      Dist.burst_interarrival rng ~rate:t.arrival_rate ~mult ~period ~dwell
        ~now

let is_update t rng = Rng.bernoulli rng t.update_fraction

let shape_to_string = function
  | Poisson -> "poisson"
  | Flash_crowd { mult; period; dwell; zipf_s } ->
      Printf.sprintf "flash:%.17g:%.17g:%.17g:%.17g" mult period dwell zipf_s

let shape_of_string str =
  if String.equal str "poisson" then Some Poisson
  else
    match String.split_on_char ':' str with
    | [ "flash"; m; p; d; s ] -> (
        match
          ( float_of_string_opt m, float_of_string_opt p,
            float_of_string_opt d, float_of_string_opt s )
        with
        | Some mult, Some period, Some dwell, Some zipf_s ->
            let shape = Flash_crowd { mult; period; dwell; zipf_s } in
            (match validate_shape shape with
            | () -> Some shape
            | exception Invalid_argument _ -> None)
        | _ -> None)
    | _ -> None

(** Announce/listen to a multicast group with scalable feedback.

    The sender runs the hot/cold machinery of {!Two_queue} over a
    shared {!Softstate_net.Channel}: every served announcement is
    offered to each group member through that member's own loss
    process. Receivers detect losses as sequence gaps and NACK over a
    shared feedback channel.

    With a group, naive per-receiver NACKs implode: every member
    missing the same packet requests it. The paper points at slotting
    and damping ([11, 20] — SRM-style suppression) for SSTP's
    multicast mode; this module implements it for the core protocol:
    a receiver delays its NACK by a uniformly random slot and cancels
    it if it overhears another member's NACK for the same sequence
    number in the meantime (feedback is multicast too, so every
    member — and the sender — hears each NACK). *)

type t

val create :
  base:Base.t ->
  mu_hot_bps:float ->
  mu_cold_bps:float ->
  mu_fb_bps:float ->
  ?sched:Softstate_sched.Scheduler.algorithm ->
  ?obs:Softstate_obs.Obs.t ->
  ?transport:Softstate_net.Transport.t ->
  ?nack_bits:int ->
  ?fb_queue_capacity:int ->
  ?suppression:bool ->
  ?nack_slot:float ->
  receiver_loss:(int -> Softstate_net.Loss.t) ->
  link_rng:Softstate_util.Rng.t ->
  unit ->
  t
(** [base] must have been created with the group's receiver count.
    [receiver_loss i] supplies receiver [i]'s loss process (each needs
    its own: loss processes are stateful). [suppression] (default
    true) enables slotting and damping with maximum delay [nack_slot]
    (default 0.5 s); with it off every receiver NACKs immediately —
    the implosion baseline. [nack_bits] defaults to 500. *)

val sender : t -> Two_queue.t
val fanout : t -> Base.announcement Softstate_net.Transport.fanout

val nacks_wanted : t -> int
(** Loss detections that wanted a repair (before suppression). *)

val nacks_sent : t -> int
val nacks_suppressed : t -> int
(** Cancelled after overhearing another member's identical NACK. *)

val nacks_delivered : t -> int
val nack_overflows : t -> int

val fb_stats : t -> Softstate_net.Link.Stats.t
(** First-hop counters of the feedback channel (sent / delivered /
    dropped) — the conservation-oracle reading. *)

val reheats : t -> int

(* Bounded seq -> key memory for NACK-based repair.

   Channel sequence numbers are monotonic and NACKs only ever name
   recent gaps (the data links are FIFO), so the last [window]
   sequence numbers are all a sender needs to resolve feedback. Slot
   [seq land (window - 1)] holds the key announced with [seq] iff the
   recorded seq still matches; older sequences are silently
   overwritten by slot reuse. O(1) store and lookup, fixed memory —
   this replaces per-protocol Hashtbls that grew to 2 * window
   entries between fold-scan prunes. *)

type t = {
  seqs : int array;
  keys : Record.key array;
  mask : int;
}

let create ~window =
  if window <= 0 || window land (window - 1) <> 0 then
    invalid_arg "Seq_ring.create: window must be a positive power of two";
  { seqs = Array.make window (-1); keys = Array.make window 0;
    mask = window - 1 }

let store t ~seq ~key =
  if seq < 0 then invalid_arg "Seq_ring.store: negative seq";
  let slot = seq land t.mask in
  t.seqs.(slot) <- seq;
  t.keys.(slot) <- key

let find t seq =
  if seq < 0 then None
  else
    let slot = seq land t.mask in
    (* lint: allow A002 the option result is the lookup API; one int-payload cell per NACK resolution, not per packet *)
    if t.seqs.(slot) = seq then Some t.keys.(slot) else None

let dims a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Linalg: empty matrix";
  let m = Array.length a.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> m then invalid_arg "Linalg: ragged matrix")
    a;
  (n, m)

let solve a b =
  let n, m = dims a in
  if n <> m then invalid_arg "Linalg.solve: matrix not square";
  if Array.length b <> n then invalid_arg "Linalg.solve: size mismatch";
  let a = Array.map Array.copy a in
  let b = Array.copy b in
  for col = 0 to n - 1 do
    (* partial pivot *)
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if abs_float a.(row).(col) > abs_float a.(!pivot).(col) then pivot := row
    done;
    if abs_float a.(!pivot).(col) < 1e-12 then
      failwith "Linalg.solve: singular system";
    if !pivot <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!pivot);
      a.(!pivot) <- tmp;
      let tb = b.(col) in
      b.(col) <- b.(!pivot);
      b.(!pivot) <- tb
    end;
    for row = col + 1 to n - 1 do
      let factor = a.(row).(col) /. a.(col).(col) in
      if not (Float.equal factor 0.0) then begin
        for k = col to n - 1 do
          a.(row).(k) <- a.(row).(k) -. (factor *. a.(col).(k))
        done;
        b.(row) <- b.(row) -. (factor *. b.(col))
      end
    done
  done;
  let x = Array.make n 0.0 in
  for row = n - 1 downto 0 do
    let sum = ref b.(row) in
    for k = row + 1 to n - 1 do
      sum := !sum -. (a.(row).(k) *. x.(k))
    done;
    x.(row) <- !sum /. a.(row).(row)
  done;
  x

let mat_vec a x =
  let n, m = dims a in
  if Array.length x <> m then invalid_arg "Linalg.mat_vec: size mismatch";
  Array.init n (fun i ->
      let sum = ref 0.0 in
      for j = 0 to m - 1 do
        sum := !sum +. (a.(i).(j) *. x.(j))
      done;
      !sum)

let vec_sub a b =
  if Array.length a <> Array.length b then
    invalid_arg "Linalg.vec_sub: size mismatch";
  Array.init (Array.length a) (fun i -> a.(i) -. b.(i))

let max_abs v = Array.fold_left (fun acc x -> Float.max acc (abs_float x)) 0.0 v

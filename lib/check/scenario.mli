(** Random end-to-end simulation scenarios for the fuzzer.

    A scenario is plain data: either a full {!Softstate_core.Experiment}
    configuration (any protocol, topology and fault schedule the
    harness accepts) or an SSTP session workload (publish/remove
    script over a lossy link). Scenarios are generated from a seeded
    {!Softstate_util.Rng}, have an exact textual form for reproducer
    command lines, and run with observability attached so the
    invariant oracles in {!Oracle} can inspect the trace and metrics
    alongside the results. *)

module Experiment = Softstate_core.Experiment

(** What drives the session's puts. *)
type sstp_workload =
  | Script
      (** [publishes] evenly-spread publishes then [removes]
          withdrawals — the classic script below *)
  | Flash of {
      f_keys : int;     (** distinct paths, all published at t = 0 *)
      f_rate : float;   (** baseline update rate per second *)
      f_mult : float;   (** burst rate multiplier *)
      f_period : float; (** burst cycle length, seconds *)
      f_dwell : float;  (** burst duration per cycle *)
      f_zipf : float;   (** Zipf exponent of key popularity *)
    }
      (** a {!Softstate_trace.Generators.flash_crowd} trace replayed
          into the session; [publishes], [publish_window] and
          [removes] are ignored *)

type sstp = {
  s_seed : int;
  mu_total_kbps : float;
  s_loss : Experiment.loss_spec;
  publishes : int;          (** leaves published, evenly spread *)
  publish_window : float;   (** over [\[0, publish_window)] seconds *)
  removes : int;            (** withdrawals of already-published paths *)
  s_duration : float;
  summary_period : float;
  workload : sstp_workload;
}

type t =
  | Core of Experiment.config
      (** [config.obs] is [None] in a scenario; {!run} installs its
          own context. *)
  | Sstp of sstp
  | Gossip of Experiment.gossip_config
      (** epidemic dissemination over uniform mixing or a flat mesh *)

val generate : Softstate_util.Rng.t -> t
(** Draw a scenario. Roughly one in four is an {!Sstp} session and one
    in four a {!Gossip} run; the rest sweep the experiment space (all
    four protocols, all five topology kinds, Bernoulli and
    Gilbert–Elliott loss, fault schedules on multi-hop topologies).
    Bounds are chosen so every scenario terminates quickly and, for
    SSTP, can converge within the grace window {!run} allows. *)

val to_string : t -> string
(** One-line textual form, [of_string]-exact (floats are printed with
    full precision; fault windows are generated on a centisecond grid
    so the {!Softstate_net.Fault} [%g] syntax round-trips too). *)

val of_string : string -> (t, string) result

val to_cli : t -> string option
(** A [softstate_sim_cli] invocation reproducing a [Core] or [Gossip]
    scenario, when every field is expressible as a CLI flag ([None]
    for [Sstp] scenarios and for configs using knobs the CLI does not
    surface, e.g. receiver-side expiry). *)

(** {1 Feature buckets}

    Static coverage buckets for the coverage-guided fuzzer: each
    scenario maps to the sorted, deduplicated set of bucket strings
    describing its shape (protocol kind, topology kind, loss model,
    fault kinds, arrival shape, ...). *)

val features : t -> string list
(** Sorted unique bucket strings for this scenario; every element is
    a member of {!feature_catalogue}. *)

val feature_catalogue : string list
(** Every bucket the generator can emit, sorted — the denominator of
    a feature-coverage fraction. *)

(** {1 Running} *)

type sstp_result = {
  consistency : float;
  avg_consistency : float;
  data_packets : int;
  feedback_packets : int;
  link_utilisation : float;
  sender_root : string;        (** namespace root digests, hex *)
  receiver_root : string;
  converged_after : float option;
      (** simulation time at which the root digests were first seen to
          match — checked at the horizon, then after every extra 30 s
          of grace run (same loss process), up to +300 s. [None] if
          the session never converged. *)
}

type payload =
  | Core_result of Experiment.result
  | Sstp_result of sstp_result
  | Gossip_result of Softstate_core.Gossip.result

type outcome = {
  scenario : t;
  payload : payload;
  horizon : float;   (** engine clock when measurement stopped *)
  events : Softstate_obs.Trace.event list;
      (** memory-trace contents, oldest first *)
  events_dropped : int;
      (** ring overwrites; trace-based oracles skip when non-zero *)
  flight : Softstate_obs.Trace.event list;
      (** flight-recorder contents: the last few hundred events before
          measurement stopped, oldest first — the black box the fuzzer
          dumps into its failure log when an oracle fires *)
  metrics : (string * Softstate_obs.Metrics.value) list;
}

val run : t -> outcome
(** Deterministic: equal scenarios yield structurally equal outcomes
    ([Stdlib.compare] = 0), which is exactly what the replay oracle
    checks. *)

module Experiment = Softstate_core.Experiment
module Workload = Softstate_core.Workload
module Fault = Softstate_net.Fault

(* Drop the i-th element. *)
let drop_nth xs n = List.filteri (fun i _ -> i <> n) xs

(* Replace the i-th element. *)
let set_nth xs n x = List.mapi (fun i y -> if i = n then x else y) xs

let core_candidates c =
  let dur =
    if c.Experiment.duration > 20.0 then
      [ { c with Experiment.duration = c.Experiment.duration /. 2.0 } ]
    else []
  in
  let faults =
    match c.Experiment.faults with
    | [] -> []
    | fs ->
        { c with Experiment.faults = [] }
        :: List.init (List.length fs) (fun i ->
               { c with Experiment.faults = drop_nth fs i })
  in
  (* tame a fault in place: a storm with fewer strikes, a gentler
     churn wave, a slower flap — for failures that need the fault
     kind present but not at full violence *)
  let tamer_faults =
    List.concat
      (List.mapi
         (fun i f ->
           let replace f' =
             { c with Experiment.faults = set_nth c.Experiment.faults i f' }
           in
           match f with
           | Fault.Storm ({ count; _ } as s) when count > 1 ->
               [ replace (Fault.Storm { s with count = count / 2 }) ]
           | Fault.Churn_wave ({ fraction; _ } as w) when fraction > 0.05 ->
               [ replace
                   (Fault.Churn_wave { w with fraction = fraction /. 2.0 }) ]
           | Fault.Flap_process ({ rate_per_s; _ } as p)
             when rate_per_s > 0.005 ->
               [ replace
                   (Fault.Flap_process
                      { p with rate_per_s = rate_per_s /. 2.0 }) ]
           | Fault.Churn_process ({ rate_per_s; _ } as p)
             when rate_per_s > 0.005 ->
               [ replace
                   (Fault.Churn_process
                      { p with rate_per_s = rate_per_s /. 2.0 }) ]
           | _ -> [])
         c.Experiment.faults)
  in
  let arrival =
    match c.Experiment.arrival with
    | Workload.Poisson -> []
    | Workload.Flash_crowd ({ mult; zipf_s; _ } as fc) ->
        { c with Experiment.arrival = Workload.Poisson }
        :: (if mult > 2.0 then
              [ { c with
                  Experiment.arrival =
                    Workload.Flash_crowd { fc with mult = mult /. 2.0 } } ]
            else [])
        @
        if zipf_s > 0.0 then
          [ { c with
              Experiment.arrival =
                Workload.Flash_crowd { fc with zipf_s = 0.0 } } ]
        else []
  in
  let topology =
    match c.Experiment.topology with
    | Experiment.Single_hop -> []
    | t ->
        (* dropping the topology also drops the faults: a fault
           schedule needs something to break *)
        { c with Experiment.topology = Experiment.Single_hop; faults = [] }
        ::
        (match t with
        | Experiment.Single_hop -> []
        | Experiment.Star { leaves } when leaves > 1 ->
            [ { c with
                Experiment.topology = Experiment.Star { leaves = leaves / 2 } } ]
        | Experiment.Star _ -> []
        | Experiment.Chain { hops } when hops > 1 ->
            [ { c with Experiment.topology = Experiment.Chain { hops = hops / 2 } } ]
        | Experiment.Chain _ -> [ { c with Experiment.topology = Experiment.Star { leaves = 1 } } ]
        | Experiment.Kary_tree _ ->
            [ { c with Experiment.topology = Experiment.Star { leaves = 2 } } ]
        | Experiment.Random_graph _ ->
            [ { c with Experiment.topology = Experiment.Star { leaves = 2 } } ])
  in
  let protocol =
    match c.Experiment.protocol with
    | Experiment.Multicast { receivers; mu_hot_kbps; mu_cold_kbps; mu_fb_kbps;
                             nack_bits; suppression; nack_slot }
      ->
        (if receivers > 2 then
           [ { c with
               Experiment.protocol =
                 Experiment.Multicast
                   { receivers = max 2 (receivers / 2); mu_hot_kbps;
                     mu_cold_kbps; mu_fb_kbps; nack_bits; suppression;
                     nack_slot } } ]
         else [])
        @ [ { c with
              Experiment.protocol =
                Experiment.Feedback
                  { mu_hot_kbps; mu_cold_kbps; mu_fb_kbps; nack_bits;
                    fb_lossy = false } } ]
    | Experiment.Feedback { mu_hot_kbps; mu_cold_kbps; _ } ->
        [ { c with
            Experiment.protocol =
              Experiment.Two_queue { mu_hot_kbps; mu_cold_kbps } } ]
    | Experiment.Two_queue { mu_hot_kbps; mu_cold_kbps } ->
        [ { c with
            Experiment.protocol =
              Experiment.Open_loop
                { mu_data_kbps = mu_hot_kbps +. mu_cold_kbps } } ]
    | Experiment.Open_loop _ -> []
  in
  let loss =
    match c.Experiment.loss with
    | Experiment.Gilbert_elliott _ as ge ->
        [ { c with Experiment.loss = Experiment.Bernoulli (Experiment.loss_mean ge) } ]
    | Experiment.Bernoulli p when p > 0.0 ->
        [ { c with Experiment.loss = Experiment.Bernoulli 0.0 } ]
    | Experiment.Bernoulli _ -> []
  in
  let knobs =
    (if c.Experiment.expiry <> Softstate_core.Base.No_expiry then
       [ { c with Experiment.expiry = Softstate_core.Base.No_expiry } ]
     else [])
    @
    if not (Float.equal c.Experiment.update_fraction 0.0) then
      [ { c with Experiment.update_fraction = 0.0 } ]
    else []
  in
  List.map (fun c -> Scenario.Core c)
    (dur @ faults @ tamer_faults @ arrival @ topology @ protocol @ loss
   @ knobs)

let sstp_candidates (s : Scenario.sstp) =
  let dur =
    if s.Scenario.s_duration > 20.0 then
      [ { s with
          Scenario.s_duration = s.Scenario.s_duration /. 2.0;
          publish_window =
            Float.min s.Scenario.publish_window (s.Scenario.s_duration /. 4.0)
        } ]
    else []
  in
  let pubs =
    if s.Scenario.publishes > 1 then
      [ { s with
          Scenario.publishes = s.Scenario.publishes / 2;
          removes = min s.Scenario.removes (s.Scenario.publishes / 2) } ]
    else []
  in
  let removes =
    if s.Scenario.removes > 0 then [ { s with Scenario.removes = 0 } ] else []
  in
  let loss =
    match s.Scenario.s_loss with
    | Experiment.Gilbert_elliott _ as ge ->
        [ { s with
            Scenario.s_loss = Experiment.Bernoulli (Experiment.loss_mean ge) } ]
    | Experiment.Bernoulli p when p > 0.0 ->
        [ { s with Scenario.s_loss = Experiment.Bernoulli 0.0 } ]
    | Experiment.Bernoulli _ -> []
  in
  let workload =
    match s.Scenario.workload with
    | Scenario.Script -> []
    | Scenario.Flash ({ f_mult; f_zipf; _ } as f) ->
        { s with Scenario.workload = Scenario.Script }
        :: (if f_mult > 2.0 then
              [ { s with
                  Scenario.workload =
                    Scenario.Flash { f with f_mult = f_mult /. 2.0 } } ]
            else [])
        @
        if f_zipf > 0.0 then
          [ { s with
              Scenario.workload = Scenario.Flash { f with f_zipf = 0.0 } } ]
        else []
  in
  List.map (fun s -> Scenario.Sstp s) (dur @ pubs @ removes @ loss @ workload)

let gossip_candidates (g : Experiment.gossip_config) =
  let smaller_topo =
    match g.Experiment.g_topology with
    | Experiment.Single_hop when g.Experiment.g_nodes > 20 ->
        [ { g with Experiment.g_nodes = max 20 (g.Experiment.g_nodes / 2) } ]
    | Experiment.Single_hop -> []
    | Experiment.Star { leaves } when leaves > 3 ->
        [ { g with Experiment.g_topology = Experiment.Star { leaves = leaves / 2 } } ]
    | Experiment.Chain { hops } when hops > 3 ->
        [ { g with Experiment.g_topology = Experiment.Chain { hops = hops / 2 } } ]
    | Experiment.Kary_tree { arity; depth } when depth > 2 ->
        [ { g with
            Experiment.g_topology = Experiment.Kary_tree { arity; depth = depth - 1 } } ]
    | Experiment.Random_graph { nodes; edge_prob } when nodes > 10 ->
        [ { g with
            Experiment.g_topology =
              Experiment.Random_graph { nodes = max 10 (nodes / 2); edge_prob } } ]
    | _ ->
        (* any mesh collapses to uniform mixing over a small population *)
        [ { g with Experiment.g_topology = Experiment.Single_hop; g_nodes = 20 } ]
  in
  let rounds =
    if g.Experiment.g_max_rounds > 8 then
      [ { g with Experiment.g_max_rounds = g.Experiment.g_max_rounds / 2 } ]
    else []
  in
  let lossless =
    if g.Experiment.g_loss > 0.0 then [ { g with Experiment.g_loss = 0.0 } ]
    else []
  in
  let simpler =
    (if g.Experiment.g_mode = Softstate_core.Gossip.Push_pull then
       [ { g with Experiment.g_mode = Softstate_core.Gossip.Push } ]
     else [])
    @ (if g.Experiment.g_fanout > 1 then
         [ { g with Experiment.g_fanout = g.Experiment.g_fanout - 1 } ]
       else [])
    @
    if g.Experiment.g_initial > 1 then [ { g with Experiment.g_initial = 1 } ]
    else []
  in
  List.map
    (fun g -> Scenario.Gossip g)
    (smaller_topo @ rounds @ lossless @ simpler)

(* ------------------------------------------------------------------ *)
(* A scalar complexity that every ladder rung strictly decreases, so
   shrinking provably terminates and a property test can pin the
   ladder's soundness without running a single scenario. The weights
   are arbitrary; what matters is that each rung touches at least one
   term downward and none upward. *)

let loss_measure = function
  | Experiment.Gilbert_elliott _ -> 2.0
  | Experiment.Bernoulli p when p > 0.0 -> 1.0
  | Experiment.Bernoulli _ -> 0.0

let topology_measure = function
  | Experiment.Single_hop -> 0.0
  | Experiment.Star { leaves } -> 1.0 +. float_of_int leaves
  | Experiment.Chain { hops } -> 1.5 +. float_of_int hops
  | Experiment.Kary_tree { arity; depth } ->
      3.5 +. float_of_int (arity * depth)
  | Experiment.Random_graph { nodes; _ } -> 3.5 +. float_of_int nodes

let fault_measure = function
  | Fault.Storm { count; _ } -> 0.1 *. float_of_int count
  | Fault.Churn_wave { fraction; _ } -> fraction
  | Fault.Flap_process { rate_per_s; _ }
  | Fault.Churn_process { rate_per_s; _ } ->
      10.0 *. rate_per_s
  | Fault.Cable_window _ | Fault.Node_window _ | Fault.Partition_window _ ->
      0.0

let protocol_measure = function
  | Experiment.Open_loop _ -> 0.0
  | Experiment.Two_queue _ -> 1.0
  | Experiment.Feedback _ -> 2.0
  | Experiment.Multicast { receivers; _ } ->
      3.0 +. (0.1 *. float_of_int receivers)

let arrival_measure = function
  | Workload.Poisson -> 0.0
  | Workload.Flash_crowd { mult; zipf_s; _ } -> 1.0 +. (0.01 *. mult) +. zipf_s

let measure = function
  | Scenario.Core c ->
      (0.01 *. c.Experiment.duration)
      +. List.fold_left
           (fun acc f -> acc +. 1.0 +. fault_measure f)
           0.0 c.Experiment.faults
      +. topology_measure c.Experiment.topology
      +. protocol_measure c.Experiment.protocol
      +. loss_measure c.Experiment.loss
      +. (if c.Experiment.expiry <> Softstate_core.Base.No_expiry then 1.0
          else 0.0)
      +. (if Float.equal c.Experiment.update_fraction 0.0 then 0.0 else 1.0)
      +. arrival_measure c.Experiment.arrival
  | Scenario.Sstp s ->
      (0.01 *. s.Scenario.s_duration)
      +. (0.1 *. float_of_int s.Scenario.publishes)
      +. (0.1 *. float_of_int s.Scenario.removes)
      +. loss_measure s.Scenario.s_loss
      +. (match s.Scenario.workload with
         | Scenario.Script -> 0.0
         | Scenario.Flash { f_mult; f_zipf; _ } ->
             1.0 +. (0.01 *. f_mult) +. f_zipf)
  | Scenario.Gossip g ->
      topology_measure g.Experiment.g_topology
      +. (0.001 *. float_of_int g.Experiment.g_nodes)
      +. (0.01 *. float_of_int g.Experiment.g_max_rounds)
      +. (if g.Experiment.g_loss > 0.0 then 1.0 else 0.0)
      +. (if g.Experiment.g_mode = Softstate_core.Gossip.Push_pull then 1.0
          else 0.0)
      +. (0.1 *. float_of_int g.Experiment.g_fanout)
      +. (0.01 *. float_of_int g.Experiment.g_initial)

let candidates = function
  | Scenario.Core c -> core_candidates c
  | Scenario.Sstp s -> sstp_candidates s
  | Scenario.Gossip g -> gossip_candidates g

let shrink ~fails ~max_runs scenario =
  let runs = ref 0 in
  let rec go current =
    let rec try_candidates = function
      | [] -> current
      | cand :: rest ->
          if !runs >= max_runs then current
          else begin
            incr runs;
            if fails cand then go cand else try_candidates rest
          end
    in
    try_candidates (candidates current)
  in
  let shrunk = go scenario in
  (shrunk, !runs)

module Experiment = Softstate_core.Experiment

(* Drop the i-th element. *)
let drop_nth xs n = List.filteri (fun i _ -> i <> n) xs

let core_candidates c =
  let dur =
    if c.Experiment.duration > 20.0 then
      [ { c with Experiment.duration = c.Experiment.duration /. 2.0 } ]
    else []
  in
  let faults =
    match c.Experiment.faults with
    | [] -> []
    | fs ->
        { c with Experiment.faults = [] }
        :: List.init (List.length fs) (fun i ->
               { c with Experiment.faults = drop_nth fs i })
  in
  let topology =
    match c.Experiment.topology with
    | Experiment.Single_hop -> []
    | t ->
        (* dropping the topology also drops the faults: a fault
           schedule needs something to break *)
        { c with Experiment.topology = Experiment.Single_hop; faults = [] }
        ::
        (match t with
        | Experiment.Single_hop -> []
        | Experiment.Star { leaves } when leaves > 1 ->
            [ { c with
                Experiment.topology = Experiment.Star { leaves = leaves / 2 } } ]
        | Experiment.Star _ -> []
        | Experiment.Chain { hops } when hops > 1 ->
            [ { c with Experiment.topology = Experiment.Chain { hops = hops / 2 } } ]
        | Experiment.Chain _ -> [ { c with Experiment.topology = Experiment.Star { leaves = 1 } } ]
        | Experiment.Kary_tree _ ->
            [ { c with Experiment.topology = Experiment.Star { leaves = 2 } } ]
        | Experiment.Random_graph _ ->
            [ { c with Experiment.topology = Experiment.Star { leaves = 2 } } ])
  in
  let protocol =
    match c.Experiment.protocol with
    | Experiment.Multicast { receivers; mu_hot_kbps; mu_cold_kbps; mu_fb_kbps;
                             nack_bits; suppression; nack_slot }
      ->
        (if receivers > 2 then
           [ { c with
               Experiment.protocol =
                 Experiment.Multicast
                   { receivers = max 2 (receivers / 2); mu_hot_kbps;
                     mu_cold_kbps; mu_fb_kbps; nack_bits; suppression;
                     nack_slot } } ]
         else [])
        @ [ { c with
              Experiment.protocol =
                Experiment.Feedback
                  { mu_hot_kbps; mu_cold_kbps; mu_fb_kbps; nack_bits;
                    fb_lossy = false } } ]
    | Experiment.Feedback { mu_hot_kbps; mu_cold_kbps; _ } ->
        [ { c with
            Experiment.protocol =
              Experiment.Two_queue { mu_hot_kbps; mu_cold_kbps } } ]
    | Experiment.Two_queue { mu_hot_kbps; mu_cold_kbps } ->
        [ { c with
            Experiment.protocol =
              Experiment.Open_loop
                { mu_data_kbps = mu_hot_kbps +. mu_cold_kbps } } ]
    | Experiment.Open_loop _ -> []
  in
  let loss =
    match c.Experiment.loss with
    | Experiment.Gilbert_elliott _ as ge ->
        [ { c with Experiment.loss = Experiment.Bernoulli (Experiment.loss_mean ge) } ]
    | Experiment.Bernoulli p when p > 0.0 ->
        [ { c with Experiment.loss = Experiment.Bernoulli 0.0 } ]
    | Experiment.Bernoulli _ -> []
  in
  let knobs =
    (if c.Experiment.expiry <> Softstate_core.Base.No_expiry then
       [ { c with Experiment.expiry = Softstate_core.Base.No_expiry } ]
     else [])
    @
    if not (Float.equal c.Experiment.update_fraction 0.0) then
      [ { c with Experiment.update_fraction = 0.0 } ]
    else []
  in
  List.map (fun c -> Scenario.Core c)
    (dur @ faults @ topology @ protocol @ loss @ knobs)

let sstp_candidates (s : Scenario.sstp) =
  let dur =
    if s.Scenario.s_duration > 20.0 then
      [ { s with
          Scenario.s_duration = s.Scenario.s_duration /. 2.0;
          publish_window =
            Float.min s.Scenario.publish_window (s.Scenario.s_duration /. 4.0)
        } ]
    else []
  in
  let pubs =
    if s.Scenario.publishes > 1 then
      [ { s with
          Scenario.publishes = s.Scenario.publishes / 2;
          removes = min s.Scenario.removes (s.Scenario.publishes / 2) } ]
    else []
  in
  let removes =
    if s.Scenario.removes > 0 then [ { s with Scenario.removes = 0 } ] else []
  in
  let loss =
    match s.Scenario.s_loss with
    | Experiment.Gilbert_elliott _ as ge ->
        [ { s with
            Scenario.s_loss = Experiment.Bernoulli (Experiment.loss_mean ge) } ]
    | Experiment.Bernoulli p when p > 0.0 ->
        [ { s with Scenario.s_loss = Experiment.Bernoulli 0.0 } ]
    | Experiment.Bernoulli _ -> []
  in
  List.map (fun s -> Scenario.Sstp s) (dur @ pubs @ removes @ loss)

let gossip_candidates (g : Experiment.gossip_config) =
  let smaller_topo =
    match g.Experiment.g_topology with
    | Experiment.Single_hop when g.Experiment.g_nodes > 20 ->
        [ { g with Experiment.g_nodes = max 20 (g.Experiment.g_nodes / 2) } ]
    | Experiment.Single_hop -> []
    | Experiment.Star { leaves } when leaves > 3 ->
        [ { g with Experiment.g_topology = Experiment.Star { leaves = leaves / 2 } } ]
    | Experiment.Chain { hops } when hops > 3 ->
        [ { g with Experiment.g_topology = Experiment.Chain { hops = hops / 2 } } ]
    | Experiment.Kary_tree { arity; depth } when depth > 2 ->
        [ { g with
            Experiment.g_topology = Experiment.Kary_tree { arity; depth = depth - 1 } } ]
    | Experiment.Random_graph { nodes; edge_prob } when nodes > 10 ->
        [ { g with
            Experiment.g_topology =
              Experiment.Random_graph { nodes = max 10 (nodes / 2); edge_prob } } ]
    | _ ->
        (* any mesh collapses to uniform mixing over a small population *)
        [ { g with Experiment.g_topology = Experiment.Single_hop; g_nodes = 20 } ]
  in
  let rounds =
    if g.Experiment.g_max_rounds > 8 then
      [ { g with Experiment.g_max_rounds = g.Experiment.g_max_rounds / 2 } ]
    else []
  in
  let lossless =
    if g.Experiment.g_loss > 0.0 then [ { g with Experiment.g_loss = 0.0 } ]
    else []
  in
  let simpler =
    (if g.Experiment.g_mode = Softstate_core.Gossip.Push_pull then
       [ { g with Experiment.g_mode = Softstate_core.Gossip.Push } ]
     else [])
    @ (if g.Experiment.g_fanout > 1 then
         [ { g with Experiment.g_fanout = g.Experiment.g_fanout - 1 } ]
       else [])
    @
    if g.Experiment.g_initial > 1 then [ { g with Experiment.g_initial = 1 } ]
    else []
  in
  List.map
    (fun g -> Scenario.Gossip g)
    (smaller_topo @ rounds @ lossless @ simpler)

let candidates = function
  | Scenario.Core c -> core_candidates c
  | Scenario.Sstp s -> sstp_candidates s
  | Scenario.Gossip g -> gossip_candidates g

let shrink ~fails ~max_runs scenario =
  let runs = ref 0 in
  let rec go current =
    let rec try_candidates = function
      | [] -> current
      | cand :: rest ->
          if !runs >= max_runs then current
          else begin
            incr runs;
            if fails cand then go cand else try_candidates rest
          end
    in
    try_candidates (candidates current)
  in
  let shrunk = go scenario in
  (shrunk, !runs)

module Engine = Softstate_sim.Engine
module Rng = Softstate_util.Rng
module Net = Softstate_net
module Sched = Softstate_sched.Scheduler
module Experiment = Softstate_core.Experiment
module Base = Softstate_core.Base
module Consistency = Softstate_core.Consistency
module Obs = Softstate_obs.Obs
module Trace = Softstate_obs.Trace
module Metrics = Softstate_obs.Metrics
module Session = Sstp.Session
module Workload = Softstate_core.Workload
module Tevent = Softstate_trace.Trace_event
module Generators = Softstate_trace.Generators

(* What drives the session's puts: the classic evenly-spread publish
   script, or a flash-crowd trace from lib/trace/generators. *)
type sstp_workload =
  | Script
  | Flash of {
      f_keys : int;
      f_rate : float;
      f_mult : float;
      f_period : float;
      f_dwell : float;
      f_zipf : float;
    }

type sstp = {
  s_seed : int;
  mu_total_kbps : float;
  s_loss : Experiment.loss_spec;
  publishes : int;
  publish_window : float;
  removes : int;
  s_duration : float;
  summary_period : float;
  workload : sstp_workload;
}

type t =
  | Core of Experiment.config
  | Sstp of sstp
  | Gossip of Experiment.gossip_config

(* ------------------------------------------------------------------ *)
(* Generation *)

let choice rng arr = arr.(Rng.int rng (Array.length arr))
let range rng lo hi = lo +. (Rng.float rng *. (hi -. lo))

(* Fault windows print through Fault.spec_to_string's %g, so keep
   their floats on a coarse grid that %g reproduces exactly. *)
let q2 x = Float.of_int (int_of_float ((x *. 100.0) +. 0.5)) /. 100.0
let q4 x = Float.of_int (int_of_float ((x *. 10000.0) +. 0.5)) /. 10000.0

(* Conservative element counts per topology kind: [cables] is a lower
   bound (random graphs may have more), [nodes] is exact. *)
let topo_bounds = function
  | Experiment.Single_hop -> (0, 2)
  | Experiment.Star { leaves } -> (leaves, leaves + 1)
  | Experiment.Chain { hops } -> (hops, hops + 1)
  | Experiment.Kary_tree { arity; depth } ->
      let nodes = ref 1 and layer = ref 1 in
      for _ = 1 to depth do
        layer := !layer * arity;
        nodes := !nodes + !layer
      done;
      (!nodes - 1, !nodes)
  | Experiment.Random_graph { nodes; _ } -> (nodes - 1, nodes)

let gen_fault rng ~cables ~nodes ~duration =
  let window () =
    let from_ = q2 (range rng 0.0 (duration *. 0.5)) in
    let till = q2 (from_ +. range rng 1.0 (duration *. 0.4)) in
    (from_, till)
  in
  match Rng.int rng 7 with
  | 0 ->
      let from_, till = window () in
      Net.Fault.Cable_window { cable = Rng.int rng cables; from_; till }
  | 1 ->
      (* spare node 0: crashing the source for a window is legal but
         makes almost every oracle vacuous *)
      let from_, till = window () in
      Net.Fault.Node_window { node = 1 + Rng.int rng (nodes - 1); from_; till }
  | 2 ->
      let from_, till = window () in
      Net.Fault.Partition_window { from_; till }
  | 3 ->
      Net.Fault.Flap_process
        { rate_per_s = q4 (range rng 0.005 0.05);
          mean_downtime = q2 (range rng 1.0 10.0) }
  | 4 ->
      Net.Fault.Churn_process
        { rate_per_s = q4 (range rng 0.005 0.05);
          mean_downtime = q2 (range rng 1.0 10.0) }
  | 5 ->
      (* correlated storm: several outages landing in one window *)
      let from_, till = window () in
      Net.Fault.Storm
        { count = 2 + Rng.int rng 4;
          mean_downtime = q2 (range rng 1.0 10.0);
          from_;
          till }
  | _ ->
      Net.Fault.Churn_wave
        { period = q2 (range rng 5.0 20.0);
          fraction = q2 (range rng 0.2 0.6);
          downtime = q2 (range rng 1.0 8.0) }

let gen_core rng =
  let duration = choice rng [| 50.0; 100.0; 200.0; 400.0 |] in
  let mu_hot = range rng 10.0 50.0 in
  let mu_cold = range rng 5.0 25.0 in
  let mu_fb = range rng 2.0 12.0 in
  let nack_bits = choice rng [| 100; 500; 1000 |] in
  let receivers = 2 + Rng.int rng 7 in
  let protocol =
    match Rng.int rng 4 with
    | 0 -> Experiment.Open_loop { mu_data_kbps = mu_hot +. mu_cold }
    | 1 -> Experiment.Two_queue { mu_hot_kbps = mu_hot; mu_cold_kbps = mu_cold }
    | 2 ->
        Experiment.Feedback
          { mu_hot_kbps = mu_hot; mu_cold_kbps = mu_cold; mu_fb_kbps = mu_fb;
            nack_bits; fb_lossy = Rng.bool rng }
    | _ ->
        Experiment.Multicast
          { receivers; mu_hot_kbps = mu_hot; mu_cold_kbps = mu_cold;
            mu_fb_kbps = mu_fb; nack_bits; suppression = Rng.bool rng;
            nack_slot = range rng 0.01 0.5 }
  in
  let topology =
    match Rng.int rng 5 with
    | 0 -> Experiment.Single_hop
    | 1 -> Experiment.Star { leaves = 2 + Rng.int rng 5 }
    | 2 -> Experiment.Chain { hops = 2 + Rng.int rng 4 }
    | 3 -> Experiment.Kary_tree { arity = 2 + Rng.int rng 2; depth = 2 }
    | _ ->
        Experiment.Random_graph
          { nodes = 4 + Rng.int rng 5;
            edge_prob = q2 (range rng 0.3 0.8) }
  in
  let faults =
    match topology with
    | Experiment.Single_hop -> []
    | _ ->
        let cables, nodes = topo_bounds topology in
        let n =
          match Rng.int rng 10 with 0 | 1 | 2 -> 0 | 3 | 4 | 5 | 6 | 7 -> 1 | _ -> 2
        in
        List.init n (fun _ -> gen_fault rng ~cables ~nodes ~duration)
  in
  let loss =
    if Rng.bool rng then Experiment.Bernoulli (Rng.float rng *. 0.5)
    else
      Experiment.Gilbert_elliott
        { p_good_to_bad = range rng 0.001 0.05;
          p_bad_to_good = range rng 0.05 0.3;
          loss_good = Rng.float rng *. 0.05;
          loss_bad = range rng 0.3 0.9 }
  in
  let death =
    match Rng.int rng 3 with
    | 0 -> Base.Per_service (range rng 0.05 0.35)
    | 1 -> Base.Lifetime_fixed (range rng 10.0 70.0)
    | _ -> Base.Lifetime_exp (range rng 10.0 70.0)
  in
  let expiry =
    match Rng.int rng 3 with
    | 0 -> Base.No_expiry
    | 1 ->
        Base.Refresh_timeout
          { multiple = range rng 2.0 6.0; sweep_period = range rng 0.5 2.5 }
    | _ -> Base.Refresh_wheel { multiple = range rng 2.0 6.0 }
  in
  let arrival =
    (* 1-in-3 flash crowds; within those, half get a Zipf-skewed
       update-target popularity on top of the burst shape *)
    match Rng.int rng 3 with
    | 0 ->
        let period = q2 (range rng 5.0 30.0) in
        Workload.Flash_crowd
          { mult = q2 (range rng 2.0 10.0);
            period;
            dwell = q2 (range rng 1.0 (period *. 0.5));
            zipf_s = (if Rng.bool rng then 0.0 else q2 (range rng 0.6 1.4)) }
    | _ -> Workload.Poisson
  in
  Core
    { Experiment.seed = 1 + Rng.int rng 1_000_000;
      duration;
      lambda_kbps = range rng 2.0 30.0;
      size_bits = choice rng [| 200; 500; 1000; 2000 |];
      death;
      expiry;
      update_fraction = (if Rng.bool rng then 0.0 else Rng.float rng);
      arrival;
      loss;
      protocol;
      topology;
      faults;
      sched = choice rng [| Sched.Lottery; Sched.Stride; Sched.Wfq; Sched.Drr |];
      empty_policy =
        choice rng
          [| Consistency.Empty_is_consistent; Consistency.Empty_is_zero;
             Consistency.Empty_holds_last |];
      record_series = true;
      obs = None }

let gen_sstp rng =
  let s_duration = range rng 40.0 120.0 in
  (* loss kept moderate so the convergence oracle's +300 s grace
     window is honestly sufficient *)
  let s_loss =
    if Rng.bool rng then Experiment.Bernoulli (Rng.float rng *. 0.4)
    else
      Experiment.Gilbert_elliott
        { p_good_to_bad = range rng 0.001 0.05;
          p_bad_to_good = range rng 0.1 0.4;
          loss_good = Rng.float rng *. 0.05;
          loss_bad = range rng 0.3 0.7 }
  in
  let publishes = 5 + Rng.int rng 46 in
  let workload =
    match Rng.int rng 3 with
    | 0 ->
        let f_period = range rng 8.0 25.0 in
        Flash
          { f_keys = 8 + Rng.int rng 25;
            f_rate = range rng 1.0 4.0;
            f_mult = range rng 3.0 10.0;
            f_period;
            f_dwell = range rng 1.0 (f_period *. 0.4);
            f_zipf = range rng 0.8 1.3 }
    | _ -> Script
  in
  Sstp
    { s_seed = 1 + Rng.int rng 1_000_000;
      mu_total_kbps = range rng 20.0 200.0;
      s_loss;
      publishes;
      publish_window = s_duration *. range rng 0.2 0.5;
      removes = Rng.int rng (1 + (publishes / 3));
      s_duration;
      summary_period = range rng 0.5 2.0;
      workload }

let gen_gossip rng =
  (* kept small: the fuzzer wants many scenarios per second, and every
     oracle below is size-independent *)
  let g_topology =
    match Rng.int rng 5 with
    | 0 -> Experiment.Single_hop (* uniform mixing over g_nodes *)
    | 1 -> Experiment.Star { leaves = 3 + Rng.int rng 38 }
    | 2 -> Experiment.Chain { hops = 3 + Rng.int rng 38 }
    | 3 ->
        Experiment.Kary_tree { arity = 2 + Rng.int rng 2; depth = 2 + Rng.int rng 3 }
    | _ ->
        Experiment.Random_graph
          { nodes = 10 + Rng.int rng 190; edge_prob = q2 (range rng 0.05 0.5) }
  in
  Gossip
    { Experiment.g_seed = 1 + Rng.int rng 1_000_000;
      g_topology;
      g_nodes = 20 + Rng.int rng 1980;
      g_mode = (if Rng.bool rng then Softstate_core.Gossip.Push
                else Softstate_core.Gossip.Push_pull);
      g_fanout = 1 + Rng.int rng 3;
      g_loss = Rng.float rng *. 0.5;
      g_round_period = range rng 0.25 2.0;
      g_max_rounds = 8 + Rng.int rng 41;
      g_initial = 1 + Rng.int rng 3;
      g_target = choice rng [| 0.5; 0.9; 1.0 |] }

let generate rng =
  match Rng.int rng 8 with
  | 0 | 1 -> gen_sstp rng (* sstp stays 1-in-4 *)
  | 2 | 3 -> gen_gossip rng
  | _ -> gen_core rng

(* ------------------------------------------------------------------ *)
(* Textual form *)

let f17 = Printf.sprintf "%.17g"

let loss_to_string = function
  | Experiment.Bernoulli p -> Printf.sprintf "b:%s" (f17 p)
  | Experiment.Gilbert_elliott { p_good_to_bad; p_bad_to_good; loss_good;
                                 loss_bad } ->
      Printf.sprintf "ge:%s:%s:%s:%s" (f17 p_good_to_bad) (f17 p_bad_to_good)
        (f17 loss_good) (f17 loss_bad)

let loss_of_string s =
  match String.split_on_char ':' s with
  | [ "b"; p ] -> (
      match float_of_string_opt p with
      | Some p -> Ok (Experiment.Bernoulli p)
      | None -> Error ("bad loss probability " ^ p))
  | [ "ge"; a; b; c; d ] -> (
      match
        ( float_of_string_opt a, float_of_string_opt b, float_of_string_opt c,
          float_of_string_opt d )
      with
      | Some p_good_to_bad, Some p_bad_to_good, Some loss_good, Some loss_bad
        ->
          Ok
            (Experiment.Gilbert_elliott
               { p_good_to_bad; p_bad_to_good; loss_good; loss_bad })
      | _ -> Error ("bad gilbert-elliott spec " ^ s))
  | _ -> Error ("bad loss spec " ^ s ^ " (want b:P or ge:PGB:PBG:LG:LB)")

let protocol_to_string = function
  | Experiment.Open_loop { mu_data_kbps } ->
      Printf.sprintf "open:%s" (f17 mu_data_kbps)
  | Experiment.Two_queue { mu_hot_kbps; mu_cold_kbps } ->
      Printf.sprintf "twoq:%s:%s" (f17 mu_hot_kbps) (f17 mu_cold_kbps)
  | Experiment.Feedback { mu_hot_kbps; mu_cold_kbps; mu_fb_kbps; nack_bits;
                          fb_lossy } ->
      Printf.sprintf "fb:%s:%s:%s:%d:%b" (f17 mu_hot_kbps) (f17 mu_cold_kbps)
        (f17 mu_fb_kbps) nack_bits fb_lossy
  | Experiment.Multicast { receivers; mu_hot_kbps; mu_cold_kbps; mu_fb_kbps;
                           nack_bits; suppression; nack_slot } ->
      Printf.sprintf "mc:%d:%s:%s:%s:%d:%b:%s" receivers (f17 mu_hot_kbps)
        (f17 mu_cold_kbps) (f17 mu_fb_kbps) nack_bits suppression
        (f17 nack_slot)

let protocol_of_string s =
  let fl x = float_of_string_opt x in
  let it x = int_of_string_opt x in
  let bo x = bool_of_string_opt x in
  match String.split_on_char ':' s with
  | [ "open"; mu ] -> (
      match fl mu with
      | Some mu_data_kbps -> Ok (Experiment.Open_loop { mu_data_kbps })
      | None -> Error ("bad protocol " ^ s))
  | [ "twoq"; h; c ] -> (
      match (fl h, fl c) with
      | Some mu_hot_kbps, Some mu_cold_kbps ->
          Ok (Experiment.Two_queue { mu_hot_kbps; mu_cold_kbps })
      | _ -> Error ("bad protocol " ^ s))
  | [ "fb"; h; c; f; n; l ] -> (
      match (fl h, fl c, fl f, it n, bo l) with
      | Some mu_hot_kbps, Some mu_cold_kbps, Some mu_fb_kbps, Some nack_bits,
        Some fb_lossy ->
          Ok
            (Experiment.Feedback
               { mu_hot_kbps; mu_cold_kbps; mu_fb_kbps; nack_bits; fb_lossy })
      | _ -> Error ("bad protocol " ^ s))
  | [ "mc"; r; h; c; f; n; sup; slot ] -> (
      match (it r, fl h, fl c, fl f, it n, bo sup, fl slot) with
      | Some receivers, Some mu_hot_kbps, Some mu_cold_kbps, Some mu_fb_kbps,
        Some nack_bits, Some suppression, Some nack_slot ->
          Ok
            (Experiment.Multicast
               { receivers; mu_hot_kbps; mu_cold_kbps; mu_fb_kbps; nack_bits;
                 suppression; nack_slot })
      | _ -> Error ("bad protocol " ^ s))
  | _ -> Error ("bad protocol " ^ s)

let topology_to_string = function
  | Experiment.Single_hop -> "single-hop"
  | Experiment.Star { leaves } -> Printf.sprintf "star:%d" leaves
  | Experiment.Chain { hops } -> Printf.sprintf "chain:%d" hops
  | Experiment.Kary_tree { arity; depth } ->
      Printf.sprintf "tree:%d:%d" arity depth
  | Experiment.Random_graph { nodes; edge_prob } ->
      (* %.17g, not %g: random edge probabilities must round-trip *)
      Printf.sprintf "random:%d:%s" nodes (f17 edge_prob)

let topology_of_string s =
  let it x = int_of_string_opt x in
  match String.split_on_char ':' s with
  | [ "single-hop" ] -> Ok Experiment.Single_hop
  | [ "star"; n ] -> (
      match it n with
      | Some leaves -> Ok (Experiment.Star { leaves })
      | None -> Error ("bad topology " ^ s))
  | [ "chain"; n ] -> (
      match it n with
      | Some hops -> Ok (Experiment.Chain { hops })
      | None -> Error ("bad topology " ^ s))
  | [ "tree"; a; d ] -> (
      match (it a, it d) with
      | Some arity, Some depth -> Ok (Experiment.Kary_tree { arity; depth })
      | _ -> Error ("bad topology " ^ s))
  | [ "random"; n; p ] -> (
      match (it n, float_of_string_opt p) with
      | Some nodes, Some edge_prob ->
          Ok (Experiment.Random_graph { nodes; edge_prob })
      | _ -> Error ("bad topology " ^ s))
  | _ -> Error ("bad topology " ^ s)

let death_to_string = function
  | Base.Per_service p -> Printf.sprintf "service:%s" (f17 p)
  | Base.Lifetime_fixed ttl -> Printf.sprintf "fixed:%s" (f17 ttl)
  | Base.Lifetime_exp mean -> Printf.sprintf "exp:%s" (f17 mean)

let death_of_string s =
  match String.split_on_char ':' s with
  | [ "service"; p ] -> (
      match float_of_string_opt p with
      | Some p -> Ok (Base.Per_service p)
      | None -> Error ("bad death " ^ s))
  | [ "fixed"; t ] -> (
      match float_of_string_opt t with
      | Some t -> Ok (Base.Lifetime_fixed t)
      | None -> Error ("bad death " ^ s))
  | [ "exp"; m ] -> (
      match float_of_string_opt m with
      | Some m -> Ok (Base.Lifetime_exp m)
      | None -> Error ("bad death " ^ s))
  | _ -> Error ("bad death " ^ s)

(* the expiry codec lives with the spec itself; softstate_sim_cli
   shares it *)
let expiry_to_string = Base.expiry_to_string
let expiry_of_string = Base.expiry_of_string

let empty_to_string = function
  | Consistency.Empty_is_consistent -> "consistent"
  | Consistency.Empty_is_zero -> "zero"
  | Consistency.Empty_holds_last -> "last"

let empty_of_string = function
  | "consistent" -> Ok Consistency.Empty_is_consistent
  | "zero" -> Ok Consistency.Empty_is_zero
  | "last" -> Ok Consistency.Empty_holds_last
  | s -> Error ("bad empty policy " ^ s)

let faults_to_string = function
  | [] -> "-"
  | specs -> String.concat "," (List.map Net.Fault.spec_to_string specs)

let faults_of_string = function
  | "-" -> Ok []
  | s -> Net.Fault.specs_of_string s

let arrival_to_string = Workload.shape_to_string

let arrival_of_string s =
  match Workload.shape_of_string s with
  | Some shape -> Ok shape
  | None -> Error ("bad arrival shape " ^ s)

let sstp_workload_to_string = function
  | Script -> "script"
  | Flash { f_keys; f_rate; f_mult; f_period; f_dwell; f_zipf } ->
      Printf.sprintf "flash:%d:%s:%s:%s:%s:%s" f_keys (f17 f_rate) (f17 f_mult)
        (f17 f_period) (f17 f_dwell) (f17 f_zipf)

let sstp_workload_of_string s =
  if String.equal s "script" then Ok Script
  else
    match String.split_on_char ':' s with
    | [ "flash"; k; r; m; p; d; z ] -> (
        match
          ( int_of_string_opt k, float_of_string_opt r, float_of_string_opt m,
            float_of_string_opt p, float_of_string_opt d,
            float_of_string_opt z )
        with
        | Some f_keys, Some f_rate, Some f_mult, Some f_period, Some f_dwell,
          Some f_zipf
          when f_keys > 0 && f_rate > 0.0 ->
            Ok (Flash { f_keys; f_rate; f_mult; f_period; f_dwell; f_zipf })
        | _ -> Error ("bad sstp workload " ^ s))
    | _ -> Error ("bad sstp workload " ^ s)

let to_string = function
  | Core c ->
      String.concat " "
        [ "core";
          "seed=" ^ string_of_int c.Experiment.seed;
          "dur=" ^ f17 c.duration;
          "lambda=" ^ f17 c.lambda_kbps;
          "size=" ^ string_of_int c.size_bits;
          "death=" ^ death_to_string c.death;
          "expiry=" ^ expiry_to_string c.expiry;
          "uf=" ^ f17 c.update_fraction;
          "arrival=" ^ arrival_to_string c.arrival;
          "loss=" ^ loss_to_string c.loss;
          "proto=" ^ protocol_to_string c.protocol;
          "topo=" ^ topology_to_string c.topology;
          "faults=" ^ faults_to_string c.faults;
          "sched=" ^ Sched.algorithm_name c.sched;
          "empty=" ^ empty_to_string c.empty_policy ]
  | Sstp s ->
      String.concat " "
        [ "sstp";
          "seed=" ^ string_of_int s.s_seed;
          "mu=" ^ f17 s.mu_total_kbps;
          "loss=" ^ loss_to_string s.s_loss;
          "pubs=" ^ string_of_int s.publishes;
          "pubwin=" ^ f17 s.publish_window;
          "removes=" ^ string_of_int s.removes;
          "dur=" ^ f17 s.s_duration;
          "sumper=" ^ f17 s.summary_period;
          "workload=" ^ sstp_workload_to_string s.workload ]
  | Gossip g ->
      String.concat " "
        [ "gossip";
          "seed=" ^ string_of_int g.Experiment.g_seed;
          "topo=" ^ topology_to_string g.g_topology;
          "nodes=" ^ string_of_int g.g_nodes;
          "mode=" ^ Softstate_core.Gossip.mode_name g.g_mode;
          "fanout=" ^ string_of_int g.g_fanout;
          "loss=" ^ f17 g.g_loss;
          "period=" ^ f17 g.g_round_period;
          "rounds=" ^ string_of_int g.g_max_rounds;
          "init=" ^ string_of_int g.g_initial;
          "target=" ^ f17 g.g_target ]

let ( let* ) = Result.bind

let field fields key parse =
  match List.assoc_opt key fields with
  | None -> Error (Printf.sprintf "missing field %s" key)
  | Some v -> parse v

let int_field fields key =
  field fields key (fun v ->
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "bad integer %s=%s" key v))

let float_field fields key =
  field fields key (fun v ->
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "bad number %s=%s" key v))

(* Fields added after a release default when absent, so older
   reproducer lines keep parsing. *)
let opt_field fields key ~default parse =
  match List.assoc_opt key fields with
  | None -> Ok default
  | Some v -> parse v

let sched_of_string s =
  match
    List.find_opt
      (fun a -> String.equal (Sched.algorithm_name a) s)
      [ Sched.Lottery; Sched.Stride; Sched.Wfq; Sched.Drr ]
  with
  | Some a -> Ok a
  | None -> Error ("bad scheduler " ^ s)

let of_string line =
  let toks =
    List.filter (fun s -> s <> "") (String.split_on_char ' ' (String.trim line))
  in
  match toks with
  | [] -> Error "empty scenario"
  | tag :: rest -> (
      let fields =
        List.filter_map
          (fun tok ->
            match String.index_opt tok '=' with
            | None -> None
            | Some i ->
                Some
                  ( String.sub tok 0 i,
                    String.sub tok (i + 1) (String.length tok - i - 1) ))
          rest
      in
      if List.length fields <> List.length rest then
        Error "malformed token (want key=value)"
      else
        match tag with
        | "core" ->
            let* seed = int_field fields "seed" in
            let* duration = float_field fields "dur" in
            let* lambda_kbps = float_field fields "lambda" in
            let* size_bits = int_field fields "size" in
            let* death = field fields "death" death_of_string in
            let* expiry = field fields "expiry" expiry_of_string in
            let* update_fraction = float_field fields "uf" in
            let* arrival =
              opt_field fields "arrival" ~default:Workload.Poisson
                arrival_of_string
            in
            let* loss = field fields "loss" loss_of_string in
            let* protocol = field fields "proto" protocol_of_string in
            let* topology = field fields "topo" topology_of_string in
            let* faults = field fields "faults" faults_of_string in
            let* sched = field fields "sched" sched_of_string in
            let* empty_policy = field fields "empty" empty_of_string in
            Ok
              (Core
                 { Experiment.seed; duration; lambda_kbps; size_bits; death;
                   expiry; update_fraction; arrival; loss; protocol; topology;
                   faults; sched; empty_policy; record_series = true;
                   obs = None })
        | "gossip" ->
            let* g_seed = int_field fields "seed" in
            let* g_topology = field fields "topo" topology_of_string in
            let* g_nodes = int_field fields "nodes" in
            let* g_mode =
              field fields "mode" (function
                | "push" -> Ok Softstate_core.Gossip.Push
                | "push-pull" -> Ok Softstate_core.Gossip.Push_pull
                | m -> Error ("bad gossip mode " ^ m))
            in
            let* g_fanout = int_field fields "fanout" in
            let* g_loss = float_field fields "loss" in
            let* g_round_period = float_field fields "period" in
            let* g_max_rounds = int_field fields "rounds" in
            let* g_initial = int_field fields "init" in
            let* g_target = float_field fields "target" in
            Ok
              (Gossip
                 { Experiment.g_seed; g_topology; g_nodes; g_mode; g_fanout;
                   g_loss; g_round_period; g_max_rounds; g_initial; g_target })
        | "sstp" ->
            let* s_seed = int_field fields "seed" in
            let* mu_total_kbps = float_field fields "mu" in
            let* s_loss = field fields "loss" loss_of_string in
            let* publishes = int_field fields "pubs" in
            let* publish_window = float_field fields "pubwin" in
            let* removes = int_field fields "removes" in
            let* s_duration = float_field fields "dur" in
            let* summary_period = float_field fields "sumper" in
            let* workload =
              opt_field fields "workload" ~default:Script
                sstp_workload_of_string
            in
            Ok
              (Sstp
                 { s_seed; mu_total_kbps; s_loss; publishes; publish_window;
                   removes; s_duration; summary_period; workload })
        | tag -> Error ("unknown scenario kind " ^ tag))

let to_cli = function
  | Sstp _ -> None
  | Gossip g ->
      (* Every gossip knob is a CLI flag; --loss %g is a reproducer
         hint, not the canonical %.17g codec. *)
      let topo =
        match g.Experiment.g_topology with
        | Experiment.Single_hop -> Printf.sprintf " --nodes %d" g.g_nodes
        | t -> Printf.sprintf " --topology %s" (topology_to_string t)
      in
      Some
        (Printf.sprintf
           "softstate_sim_cli --protocol gossip --seed %d --gossip-mode %s \
            --fanout %d --loss %g --round-period %g --rounds %d --initial %d \
            --target %g%s"
           g.Experiment.g_seed
           (Softstate_core.Gossip.mode_name g.g_mode)
           g.g_fanout g.g_loss g.g_round_period g.g_max_rounds g.g_initial
           g.g_target topo)
  | Core c ->
      (* Only claim a CLI reproducer when every knob is expressible as
         a softstate_sim_cli flag. *)
      let ok_empty = c.Experiment.empty_policy = Consistency.Empty_is_consistent in
      let proto_flags =
        match c.protocol with
        | Experiment.Open_loop { mu_data_kbps } ->
            Some (Printf.sprintf "--protocol open-loop --mu-data %g" mu_data_kbps)
        | Experiment.Two_queue { mu_hot_kbps; mu_cold_kbps } ->
            Some
              (Printf.sprintf "--protocol two-queue --mu-hot %g --mu-cold %g"
                 mu_hot_kbps mu_cold_kbps)
        | Experiment.Feedback
            { mu_hot_kbps; mu_cold_kbps; mu_fb_kbps; nack_bits;
              fb_lossy = false } ->
            Some
              (Printf.sprintf
                 "--protocol feedback --mu-hot %g --mu-cold %g --mu-fb %g \
                  --nack-bits %d"
                 mu_hot_kbps mu_cold_kbps mu_fb_kbps nack_bits)
        | Experiment.Feedback _ -> None (* fb_lossy not a CLI flag *)
        | Experiment.Multicast
            { receivers; mu_hot_kbps; mu_cold_kbps; mu_fb_kbps; nack_bits;
              suppression = true; nack_slot = _ } ->
            (* nack_slot is fixed at 0.5 in the CLI; only claim a
               reproducer when the scenario matches *)
            Some
              (Printf.sprintf
                 "--protocol multicast --receivers %d --mu-hot %g --mu-cold \
                  %g --mu-fb %g --nack-bits %d"
                 receivers mu_hot_kbps mu_cold_kbps mu_fb_kbps nack_bits)
        | Experiment.Multicast _ -> None
      in
      let ok_slot =
        match c.protocol with
        | Experiment.Multicast { nack_slot; _ } -> Float.equal nack_slot 0.5
        | _ -> true
      in
      let loss_flag =
        match c.loss with
        | Experiment.Bernoulli p -> Printf.sprintf "--loss %g" p
        | Experiment.Gilbert_elliott { p_good_to_bad; p_bad_to_good;
                                       loss_good; loss_bad } ->
            Printf.sprintf "--loss ge:%g:%g:%g:%g" p_good_to_bad p_bad_to_good
              loss_good loss_bad
      in
      if not (ok_empty && ok_slot) then None
      else
        Option.map
          (fun proto ->
            let topo =
              match c.topology with
              | Experiment.Single_hop -> ""
              | t -> Printf.sprintf " --topology %s" (topology_to_string t)
            in
            let faults =
              match c.faults with
              | [] -> ""
              | fs -> Printf.sprintf " --faults '%s'" (faults_to_string fs)
            in
            let uf =
              if Float.equal c.update_fraction 0.0 then ""
              else Printf.sprintf " --update-fraction %g" c.update_fraction
            in
            let expiry =
              match c.expiry with
              | Base.No_expiry -> ""
              | e -> Printf.sprintf " --expiry %s" (expiry_to_string e)
            in
            let arrival =
              match c.arrival with
              | Workload.Poisson -> ""
              | shape ->
                  Printf.sprintf " --arrival %s" (arrival_to_string shape)
            in
            Printf.sprintf
              "softstate_sim_cli %s --seed %d --duration %g --lambda %g \
               --size-bits %d --death %s --sched %s %s%s%s%s%s%s"
              proto c.seed c.duration c.lambda_kbps c.size_bits
              (death_to_string c.death)
              (Sched.algorithm_name c.sched)
              loss_flag topo faults uf expiry arrival)
          proto_flags

(* ------------------------------------------------------------------ *)
(* Feature buckets for coverage accounting.

   Each scenario maps to a small set of static bucket strings; the
   catalogue below enumerates every bucket the generator can emit, so
   a coverage fraction has a well-defined denominator. *)

let topo_feature = function
  | Experiment.Single_hop -> "topo:single-hop"
  | Experiment.Star _ -> "topo:star"
  | Experiment.Chain _ -> "topo:chain"
  | Experiment.Kary_tree _ -> "topo:tree"
  | Experiment.Random_graph _ -> "topo:random"

let loss_feature = function
  | Experiment.Bernoulli _ -> "loss:bernoulli"
  | Experiment.Gilbert_elliott _ -> "loss:ge"

let fault_feature = function
  | Net.Fault.Cable_window _ -> "fault:cable"
  | Net.Fault.Node_window _ -> "fault:node"
  | Net.Fault.Partition_window _ -> "fault:partition"
  | Net.Fault.Flap_process _ -> "fault:flap"
  | Net.Fault.Churn_process _ -> "fault:churn"
  | Net.Fault.Storm _ -> "fault:storm"
  | Net.Fault.Churn_wave _ -> "fault:churnwave"

let features = function
  | Core c ->
      let proto =
        match c.Experiment.protocol with
        | Experiment.Open_loop _ -> [ "proto:open" ]
        | Experiment.Two_queue _ -> [ "proto:twoq" ]
        | Experiment.Feedback { fb_lossy; _ } ->
            [ "proto:fb";
              (if fb_lossy then "fb-lossy:on" else "fb-lossy:off") ]
        | Experiment.Multicast { suppression; _ } ->
            [ "proto:mc";
              (if suppression then "mc-suppression:on"
               else "mc-suppression:off") ]
      in
      let arrival =
        match c.arrival with
        | Workload.Poisson -> [ "arrival:poisson" ]
        | Workload.Flash_crowd { zipf_s; _ } ->
            "arrival:flash"
            :: (if zipf_s > 0.0 then [ "arrival:flash-zipf" ] else [])
      in
      let faults =
        match c.faults with
        | [] -> [ "fault:none" ]
        | fs -> List.map fault_feature fs
      in
      List.sort_uniq String.compare
        (("kind:core" :: proto)
        @ [ topo_feature c.topology;
            loss_feature c.loss;
            (match c.death with
            | Base.Per_service _ -> "death:service"
            | Base.Lifetime_fixed _ -> "death:fixed"
            | Base.Lifetime_exp _ -> "death:exp");
            (match c.expiry with
            | Base.No_expiry -> "expiry:none"
            | Base.Refresh_timeout _ -> "expiry:sweep"
            | Base.Refresh_wheel _ -> "expiry:wheel");
            "sched:" ^ Sched.algorithm_name c.sched;
            "empty:" ^ empty_to_string c.empty_policy;
            (if c.update_fraction > 0.0 then "uf:pos" else "uf:zero") ]
        @ arrival @ faults)
  | Sstp s ->
      List.sort_uniq String.compare
        [ "kind:sstp";
          loss_feature s.s_loss;
          (match s.workload with
          | Script -> "sstp-workload:script"
          | Flash _ -> "sstp-workload:flash");
          (if s.removes > 0 then "sstp-removes:pos" else "sstp-removes:zero") ]
  | Gossip g ->
      List.sort_uniq String.compare
        [ "kind:gossip";
          topo_feature g.Experiment.g_topology;
          "gossip-mode:" ^ Softstate_core.Gossip.mode_name g.g_mode;
          Printf.sprintf "gossip-fanout:%d" g.g_fanout ]

let feature_catalogue =
  List.sort_uniq String.compare
    ([ "kind:core"; "kind:sstp"; "kind:gossip";
       "proto:open"; "proto:twoq"; "proto:fb"; "proto:mc";
       "fb-lossy:on"; "fb-lossy:off";
       "mc-suppression:on"; "mc-suppression:off";
       "topo:single-hop"; "topo:star"; "topo:chain"; "topo:tree"; "topo:random";
       "loss:bernoulli"; "loss:ge";
       "death:service"; "death:fixed"; "death:exp";
       "expiry:none"; "expiry:sweep"; "expiry:wheel";
       "empty:consistent"; "empty:zero"; "empty:last";
       "uf:zero"; "uf:pos";
       "arrival:poisson"; "arrival:flash"; "arrival:flash-zipf";
       "fault:none"; "fault:cable"; "fault:node"; "fault:partition";
       "fault:flap"; "fault:churn"; "fault:storm"; "fault:churnwave";
       "sstp-workload:script"; "sstp-workload:flash";
       "sstp-removes:zero"; "sstp-removes:pos";
       "gossip-mode:push"; "gossip-mode:push-pull";
       "gossip-fanout:1"; "gossip-fanout:2"; "gossip-fanout:3" ]
    @ List.map
        (fun a -> "sched:" ^ Sched.algorithm_name a)
        Sched.all_algorithms)

(* ------------------------------------------------------------------ *)
(* Running *)

type sstp_result = {
  consistency : float;
  avg_consistency : float;
  data_packets : int;
  feedback_packets : int;
  link_utilisation : float;
  sender_root : string;
  receiver_root : string;
  converged_after : float option;
}

type payload =
  | Core_result of Experiment.result
  | Sstp_result of sstp_result
  | Gossip_result of Softstate_core.Gossip.result

type outcome = {
  scenario : t;
  payload : payload;
  horizon : float;
  events : Trace.event list;
  events_dropped : int;
  flight : Trace.event list;
  metrics : (string * Metrics.value) list;
}

let trace_capacity = 1 lsl 19

(* Engine_probe exports wall-clock performance ratios and the
   profiler wall-clock counters; everything else in a snapshot is a
   pure function of the simulation, which is what makes outcomes
   comparable across replays. *)
let sim_metrics metrics ~now =
  List.filter
    (fun (name, _) ->
      not
        (String.ends_with ~suffix:"wall_s_per_sim_s" name
        || String.ends_with ~suffix:"events_per_wall_s" name
        || String.starts_with ~prefix:"profile." name))
    (Metrics.snapshot metrics ~now)

let run_core scenario config =
  let sink = Trace.memory ~capacity:trace_capacity () in
  let recorder = Trace.recorder () in
  let obs = Obs.create ~trace:(Trace.tee [ sink; recorder ]) () in
  let config = { config with Experiment.obs = Some obs; record_series = true } in
  let result = Experiment.run config in
  { scenario;
    payload = Core_result result;
    horizon = config.Experiment.duration;
    events = Trace.events sink;
    events_dropped = Trace.overwritten sink;
    flight = Trace.recent recorder;
    metrics = sim_metrics (Obs.metrics obs) ~now:config.Experiment.duration }

let sstp_path i = Printf.sprintf "grp%d/item%d" (i mod 4) i

let grace_step = 30.0
let grace_max = 300.0

let run_sstp scenario s =
  let sink = Trace.memory ~capacity:trace_capacity () in
  let recorder = Trace.recorder () in
  let obs = Obs.create ~trace:(Trace.tee [ sink; recorder ]) () in
  let engine = Engine.create () in
  let rng = Rng.create s.s_seed in
  let config =
    { (Session.default_config ~mu_total_bps:(s.mu_total_kbps *. 1000.0)) with
      Session.loss = Experiment.make_loss s.s_loss;
      summary_period = s.summary_period }
  in
  (* The flash trace draws from a split generator before the session
     sees [rng], so Script scenarios keep the historical session
     stream byte-for-byte (the split only happens on Flash). *)
  let flash_trace =
    match s.workload with
    | Script -> None
    | Flash f ->
        let trace_rng = Rng.split rng in
        Some
          (Generators.flash_crowd ~rng:trace_rng ~duration:s.s_duration
             ~keys:f.f_keys ~base_rate:f.f_rate ~mult:f.f_mult
             ~period:f.f_period ~dwell:f.f_dwell ~zipf_s:f.f_zipf ())
  in
  let session = Session.create ~obs ~engine ~rng ~config () in
  Session.track_consistency session ~period:1.0;
  (match flash_trace with
  | Some trace ->
      Tevent.replay engine trace
        ~put:(fun ~path ~payload -> Session.publish session ~path ~payload)
        ~remove:(fun ~path -> Session.remove session ~path)
  | None ->
      let publishes = max 1 s.publishes in
      for i = 0 to s.publishes - 1 do
        let time =
          s.publish_window *. float_of_int i /. float_of_int publishes
        in
        ignore
          (Engine.schedule_at engine ~time (fun _ ->
               Session.publish session ~path:(sstp_path i)
                 ~payload:(Printf.sprintf "v%d" i)))
      done;
      (* withdrawals of already-published paths, spread over the tail
         of the run, strictly after the publish window *)
      let removes = min s.removes s.publishes in
      for j = 0 to removes - 1 do
        let time =
          s.publish_window
          +. (s.s_duration -. s.publish_window)
             *. float_of_int (j + 1)
             /. float_of_int (removes + 1)
        in
        ignore
          (Engine.schedule_at engine ~time (fun _ ->
               Session.remove session ~path:(sstp_path j)))
      done);
  Engine.run ~until:s.s_duration engine;
  let measured =
    { consistency = Session.consistency session;
      avg_consistency = Session.average_consistency session;
      data_packets = Session.data_packets session;
      feedback_packets = Session.feedback_packets session;
      link_utilisation = Session.link_utilisation session;
      sender_root = fst (Session.root_digests session);
      receiver_root = snd (Session.root_digests session);
      converged_after = None }
  in
  (* grace run for the convergence oracle: same loss process, just
     more time for summaries and repairs to drain *)
  let rec grace () =
    if Session.converged session then Some (Engine.now engine)
    else if Engine.now engine >= s.s_duration +. grace_max then None
    else begin
      Engine.run ~until:(Engine.now engine +. grace_step) engine;
      grace ()
    end
  in
  let converged_after = grace () in
  let horizon = Engine.now engine in
  { scenario;
    payload = Sstp_result { measured with converged_after };
    horizon;
    events = Trace.events sink;
    events_dropped = Trace.overwritten sink;
    flight = Trace.recent recorder;
    metrics = sim_metrics (Obs.metrics obs) ~now:horizon }

let run_gossip scenario g =
  let sink = Trace.memory ~capacity:trace_capacity () in
  let recorder = Trace.recorder () in
  let obs = Obs.create ~trace:(Trace.tee [ sink; recorder ]) () in
  let result = Experiment.run_gossip ~obs g in
  let horizon =
    match result.Softstate_core.Gossip.series with
    | [||] -> 0.0
    | s -> fst s.(Array.length s - 1)
  in
  { scenario;
    payload = Gossip_result result;
    horizon;
    events = Trace.events sink;
    events_dropped = Trace.overwritten sink;
    flight = Trace.recent recorder;
    metrics = sim_metrics (Obs.metrics obs) ~now:horizon }

let run = function
  | Core config as scenario -> run_core scenario config
  | Sstp s as scenario -> run_sstp scenario s
  | Gossip g as scenario -> run_gossip scenario g

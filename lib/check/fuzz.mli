(** The fuzzing loop: generate scenarios from a seed chain, run them,
    check every oracle, and shrink failures to minimal reproducers.

    Deterministic end to end: the [seed] fixes the scenario sequence,
    each scenario fixes its own run, and shrinking is a pure function
    of the failing scenario — so a failure report is reproducible from
    the fuzzer command line alone. *)

type failure = {
  index : int;                       (** position in the seed chain *)
  scenario : Scenario.t;
  violations : Oracle.violation list;
  shrunk : Scenario.t;               (** locally minimal failing form *)
  shrunk_violations : Oracle.violation list;
  shrink_runs : int;                 (** candidate executions spent *)
  flight : Softstate_obs.Trace.event list;
      (** flight-recorder dump from the shrunk scenario's rerun: the
          last few hundred trace events before measurement stopped *)
}

type stats = {
  scenarios : int;  (** scenarios generated and checked *)
  runs : int;       (** total executions, including shrinking *)
  failures : failure list;  (** chronological *)
  coverage : Coverage.t;
      (** features of every scenario checked, trace-event kinds of
          every outcome, and oracle branches exercised *)
}

val scenario_seeds : seed:int -> count:int -> int array
(** The per-scenario generator seeds derived from the fuzzer seed —
    a pure function, so scenario [i] can be regenerated standalone. *)

val run :
  ?corrupt:(Scenario.outcome -> Scenario.outcome) ->
  ?oracles:string list ->
  ?max_shrink:int ->
  ?log:(string -> unit) ->
  ?on_progress:(int -> unit) ->
  ?guided:bool ->
  ?candidates:int ->
  seed:int ->
  count:int ->
  unit ->
  stats
(** [run ~seed ~count ()] fuzzes [count] scenarios.

    [corrupt] post-processes every outcome before the oracles see it
    (also during shrinking) — the mutation hook used to smoke-test
    that the oracles actually catch planted bugs. [oracles] filters by
    name ([[]] = all, including replay); raises [Invalid_argument] on
    an unknown name. [max_shrink] bounds candidate executions per
    failure (default 200). [log] receives one JSON line per failure.
    [on_progress] is called with each completed scenario index.

    [guided] turns on coverage guidance: scenario [i] is chosen among
    [candidates] (default 4) sequential draws from its seed-chain rng,
    keeping the draw that touches the most feature buckets not yet in
    the run's coverage map. The first draw is exactly the unguided
    scenario, so [guided:false] (default) remains byte-identical to
    the historical stream. *)

val feature_coverage :
  ?guided:bool ->
  ?candidates:int ->
  seed:int ->
  count:int ->
  unit ->
  Coverage.t
(** Generation-only: the coverage map of a [count]-scenario chain's
    features, without executing any scenario — the cheap way to
    compare guided against uniform generation at equal count. *)

val check_scenario :
  ?corrupt:(Scenario.outcome -> Scenario.outcome) ->
  ?oracles:string list ->
  Scenario.t ->
  Oracle.violation list
(** Run one scenario through the oracle battery ([--replay]). *)

val reproducer : failure -> string
(** Human-readable reproduction instructions: the shrunk scenario in
    {!Scenario.to_string} form for [--replay], plus an equivalent
    [softstate_sim_cli] invocation when one exists. *)

val failure_to_json : failure -> string
(** One-line JSON object (index, scenario, violations, shrunk form,
    reproducer, flight-recorder event dump). *)

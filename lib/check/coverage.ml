module Trace = Softstate_obs.Trace
module SMap = Map.Make (String)

(* Maps, not Hashtbl: every serialization and report below iterates
   the table, and Map iteration order is the key order — deterministic
   by construction, nothing for the D003 lint to worry about. *)
type t = {
  mutable features : int SMap.t;
  mutable events : int SMap.t;
  mutable branches : int SMap.t;
}

let create () =
  { features = SMap.empty; events = SMap.empty; branches = SMap.empty }

let copy t =
  { features = t.features; events = t.events; branches = t.branches }

let bump m k = SMap.update k (function None -> Some 1 | Some n -> Some (n + 1)) m

let note_feature t k = t.features <- bump t.features k
let note_event t k = t.events <- bump t.events k
let note_branch t k = t.branches <- bump t.branches k

let note_scenario t scenario =
  List.iter (note_feature t) (Scenario.features scenario)

let note_outcome t (outcome : Scenario.outcome) =
  List.iter
    (fun ev -> note_event t (Trace.kind_to_string ev.Trace.kind))
    outcome.Scenario.events

let seen m = List.map fst (SMap.bindings m)
let seen_features t = seen t.features
let seen_events t = seen t.events
let seen_branches t = seen t.branches

let feature_count t = SMap.cardinal t.features

(* The catalogue of trace-event kinds a fuzz run can put in a memory
   trace (everything but Custom, whose payload is open-ended). *)
let event_catalogue =
  List.map Trace.kind_to_string
    [ Trace.Packet_sent; Trace.Packet_dropped; Trace.Packet_delivered;
      Trace.Queue_overflow; Trace.Announce; Trace.Refresh; Trace.Summary;
      Trace.Nack; Trace.Query; Trace.Repair; Trace.Remove;
      Trace.Digest_mismatch; Trace.Timer_fired; Trace.Rate_change;
      Trace.Link_down; Trace.Link_up; Trace.Node_crash; Trace.Node_restart;
      Trace.Partition; Trace.Heal ]
  |> List.sort_uniq String.compare

let fraction ~seen ~catalogue =
  match List.length catalogue with
  | 0 -> 1.0
  | n ->
      let hit = List.filter (fun k -> List.mem k seen) catalogue in
      float_of_int (List.length hit) /. float_of_int n

let feature_fraction t =
  fraction ~seen:(seen_features t) ~catalogue:Scenario.feature_catalogue

let event_fraction t =
  fraction ~seen:(seen_events t) ~catalogue:event_catalogue

let unseen ~seen ~catalogue =
  List.filter (fun k -> not (List.mem k seen)) catalogue

let unseen_features t =
  unseen ~seen:(seen_features t) ~catalogue:Scenario.feature_catalogue

let merge a b =
  let union x y = SMap.union (fun _ m n -> Some (m + n)) x y in
  { features = union a.features b.features;
    events = union a.events b.events;
    branches = union a.branches b.branches }

(* ------------------------------------------------------------------ *)
(* Serialization: one "dim<TAB>name<TAB>count" line per entry, sorted
   by (dim, name) — byte-identical for equal coverage maps. *)

let dims = [ ("feature", `F); ("event", `E); ("branch", `B) ]

let to_string t =
  let lines dim m =
    List.map
      (fun (k, n) -> Printf.sprintf "%s\t%s\t%d" dim k n)
      (SMap.bindings m)
  in
  String.concat "\n"
    (lines "branch" t.branches @ lines "event" t.events
    @ lines "feature" t.features)
  ^ "\n"

let of_string str =
  let t = create () in
  let err = ref None in
  String.split_on_char '\n' str
  |> List.iteri (fun lineno line ->
         if !err = None && not (String.equal (String.trim line) "") then
           match String.split_on_char '\t' line with
           | [ dim; key; count ] -> (
               match (List.assoc_opt dim dims, int_of_string_opt count) with
               | Some which, Some n when n > 0 ->
                   let add m = SMap.add key n m in
                   (match which with
                   | `F -> t.features <- add t.features
                   | `E -> t.events <- add t.events
                   | `B -> t.branches <- add t.branches)
               | _ ->
                   err :=
                     Some
                       (Printf.sprintf "line %d: bad dim or count in %S"
                          (lineno + 1) line))
           | _ ->
               err :=
                 Some
                   (Printf.sprintf "line %d: want dim<TAB>name<TAB>count, got %S"
                      (lineno + 1) line));
  match !err with Some e -> Error e | None -> Ok t

(* ------------------------------------------------------------------ *)
(* Report *)

let report t =
  let buf = Buffer.create 1024 in
  let section title m catalogue =
    let seen_keys = seen m in
    let total = List.length catalogue in
    let hit =
      List.length (List.filter (fun k -> List.mem k seen_keys) catalogue)
    in
    if total > 0 then
      Buffer.add_string buf
        (Printf.sprintf "%-10s %3d / %-3d (%.2f)\n" title hit total
           (float_of_int hit /. float_of_int total))
    else
      Buffer.add_string buf
        (Printf.sprintf "%-10s %3d buckets\n" title (SMap.cardinal m));
    SMap.iter
      (fun k n -> Buffer.add_string buf (Printf.sprintf "  %-28s %d\n" k n))
      m;
    let missing = unseen ~seen:seen_keys ~catalogue in
    List.iter
      (fun k -> Buffer.add_string buf (Printf.sprintf "  %-28s MISSING\n" k))
      missing
  in
  section "features" t.features Scenario.feature_catalogue;
  section "events" t.events event_catalogue;
  section "branches" t.branches [];
  Buffer.contents buf

(** Invariant oracles over fuzzer scenario outcomes.

    Each oracle inspects one {!Scenario.outcome} and returns the
    invariant violations it found (empty list = clean). The catalogue:

    - [conservation] — packets are conserved everywhere we can count
      them: the result triple satisfies
      [0 <= sent - delivered - dropped <= #servers]; in topology mode
      the substrate probes satisfy the exact queueing identity
      [injected = blackholed + overflowed + queued + entered-service];
      and per trace source, every [Packet_sent] is matched by exactly
      one [Packet_dropped]/[Packet_delivered] (times the subscriber
      count for the single-hop multicast channel, and excluding
      blackhole drops tagged [detail="fault"]).
    - [clock] — trace timestamps are non-decreasing (the engine never
      runs backwards) and stay within [\[0, horizon\]].
    - [consistency] — c(t) readings are probabilities: the average,
      final and series values all lie in [\[0, 1\]], and the recorded
      series is monotone in time.
    - [counters] — cross-field sanity: NACK counters form a funnel
      (delivered <= sent <= wanted, suppressed <= wanted), utilisation
      is a fraction, single-hop runs report zero fault activity, and
      first deliveries never exceed transmissions x receivers.
    - [convergence] — an SSTP session over moderate loss reaches
      digest agreement within the grace window {!Scenario.run} allows.
    - [backlog] — the NACK-repair loop is stable: the NACK issue-rate
      series (from {!Softstate_obs.Lifecycle.nack_depth_series}) must
      not end the run in a storm that built up during it — a final
      quarter that carries substantial volume, dwarfs both early
      quarters, and has not decayed from the run's peak. That is the
      signature of an undamped repair loop whose branching ratio
      crossed one (every lost retransmission breeds fresh NACKs faster
      than repairs retire them).
    - [replay] — re-running the same scenario yields a structurally
      identical outcome (bit-identical determinism).
    - [jobs] — [Experiment.run_many] summaries are identical for
      [jobs:1] and [jobs:2] (only checked for short scenarios).

    [replay] and [jobs] re-execute scenarios, so they are only
    included when {!all} / {!select} are given the [rerun] runner
    (the fuzzer passes its own, which applies the same corruption
    hook under mutation testing). *)

type violation = { oracle : string; message : string }

type t = { name : string; check : Scenario.outcome -> violation list }

val names : string list
(** Every oracle name, in catalogue order. *)

val branches : string list
(** Every branch bucket an oracle can report through [note] — the
    catalogue the fuzzer's coverage map scores branch coverage
    against. *)

val all :
  ?note:(string -> unit) ->
  ?rerun:(Scenario.t -> Scenario.outcome) ->
  unit ->
  t list
(** [note] is called with a {!branches} bucket every time a checking
    path is exercised; defaults to a no-op. *)

val select :
  ?note:(string -> unit) ->
  ?rerun:(Scenario.t -> Scenario.outcome) ->
  string list ->
  (t list, string) result
(** Filter by name; [[]] selects everything. Unknown names error. *)

val check : t list -> Scenario.outcome -> violation list
(** Run every oracle, concatenating violations in catalogue order. *)

(** {1 Backlog stability measure}

    Exposed so the fuzz CLI can sweep a slotting/damping parameter
    grid and report a stability frontier with the same measure the
    [backlog] oracle enforces. *)

type backlog_stats = {
  b_buckets : int;          (** depth-series points actually observed *)
  b_peak : int;             (** max outstanding repair requests *)
  b_final : int;            (** outstanding in the last observed bucket *)
  b_nack_quarters : int array;
      (** NACK/query issues per run quarter, length 4 *)
  b_repair_total : int;
  b_nack_total : int;
}

val backlog_measure : Scenario.outcome -> backlog_stats option
(** [None] for non-core outcomes, overwritten traces, or runs whose
    feedback channel went quiet too early to judge. *)

val backlog_unstable : backlog_stats -> bool
(** The thresholded instability predicate the [backlog] oracle
    applies: the final quarter's NACK volume is substantial, dwarfs
    both early quarters, and has not decayed from the run's peak
    quarter — onset without recovery. A steady state — however
    loaded — reads as flat and passes; a fault-window spike decays
    before the horizon and passes; only a storm the run ends inside
    of fails. *)

(** Invariant oracles over fuzzer scenario outcomes.

    Each oracle inspects one {!Scenario.outcome} and returns the
    invariant violations it found (empty list = clean). The catalogue:

    - [conservation] — packets are conserved everywhere we can count
      them: the result triple satisfies
      [0 <= sent - delivered - dropped <= #servers]; in topology mode
      the substrate probes satisfy the exact queueing identity
      [injected = blackholed + overflowed + queued + entered-service];
      and per trace source, every [Packet_sent] is matched by exactly
      one [Packet_dropped]/[Packet_delivered] (times the subscriber
      count for the single-hop multicast channel, and excluding
      blackhole drops tagged [detail="fault"]).
    - [clock] — trace timestamps are non-decreasing (the engine never
      runs backwards) and stay within [\[0, horizon\]].
    - [consistency] — c(t) readings are probabilities: the average,
      final and series values all lie in [\[0, 1\]], and the recorded
      series is monotone in time.
    - [counters] — cross-field sanity: NACK counters form a funnel
      (delivered <= sent <= wanted, suppressed <= wanted), utilisation
      is a fraction, single-hop runs report zero fault activity, and
      first deliveries never exceed transmissions x receivers.
    - [convergence] — an SSTP session over moderate loss reaches
      digest agreement within the grace window {!Scenario.run} allows.
    - [replay] — re-running the same scenario yields a structurally
      identical outcome (bit-identical determinism).
    - [jobs] — [Experiment.run_many] summaries are identical for
      [jobs:1] and [jobs:2] (only checked for short scenarios).

    [replay] and [jobs] re-execute scenarios, so they are only
    included when {!all} / {!select} are given the [rerun] runner
    (the fuzzer passes its own, which applies the same corruption
    hook under mutation testing). *)

type violation = { oracle : string; message : string }

type t = { name : string; check : Scenario.outcome -> violation list }

val names : string list
(** Every oracle name, in catalogue order. *)

val all : ?rerun:(Scenario.t -> Scenario.outcome) -> unit -> t list

val select :
  ?rerun:(Scenario.t -> Scenario.outcome) ->
  string list ->
  (t list, string) result
(** Filter by name; [[]] selects everything. Unknown names error. *)

val check : t list -> Scenario.outcome -> violation list
(** Run every oracle, concatenating violations in catalogue order. *)

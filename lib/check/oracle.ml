module Experiment = Softstate_core.Experiment
module Trace = Softstate_obs.Trace
module Metrics = Softstate_obs.Metrics

type violation = { oracle : string; message : string }

type t = { name : string; check : Scenario.outcome -> violation list }

let v oracle fmt = Printf.ksprintf (fun message -> { oracle; message }) fmt

let eps = 1e-9

let in_unit x = x >= -.eps && x <= 1.0 +. eps

(* ------------------------------------------------------------------ *)
(* conservation *)

(* Upper bound on servers that can hold an in-flight packet at the
   horizon: head data link + feedback channel, plus two directed edge
   pipes per cable in topology mode (random graphs can reach the
   complete graph). *)
let server_bound = function
  | Scenario.Sstp _ -> 2
  | Scenario.Gossip _ -> 0 (* rounds are atomic: nothing is in flight *)
  | Scenario.Core c -> (
      match c.Experiment.topology with
      | Experiment.Single_hop -> 2
      | Experiment.Star { leaves } -> 2 + (2 * leaves)
      | Experiment.Chain { hops } -> 2 + (2 * hops)
      | Experiment.Kary_tree { arity; depth } ->
          let nodes = ref 1 and layer = ref 1 in
          for _ = 1 to depth do
            layer := !layer * arity;
            nodes := !nodes + !layer
          done;
          2 + (2 * (!nodes - 1))
      | Experiment.Random_graph { nodes; _ } -> 2 + (nodes * (nodes - 1)))

let metric_num outcome name =
  match List.assoc_opt name outcome.Scenario.metrics with
  | Some (Metrics.Float x) -> Some x
  | Some (Metrics.Int i) -> Some (float_of_int i)
  | _ -> None

let substrate_checks outcome =
  (* the 8 substrate probes a topology registers under its label
     (Experiment uses the default, "topo") *)
  let get n = metric_num outcome ("topo." ^ n) in
  match
    ( get "injected", get "blackholed_inject", get "blackholed_deliver",
      get "overflowed", get "queued", get "edge_sent", get "edge_delivered",
      get "edge_dropped" )
  with
  | Some inj, Some bhi, Some bhd, Some ovf, Some que, Some snt, Some dlv,
    Some drp ->
      let bad = ref [] in
      let slack = inj -. bhi -. ovf -. que -. snt in
      if Float.abs slack > 0.5 then
        bad :=
          v "conservation"
            "substrate identity broken: injected=%g but blackholed_inject=%g \
             + overflowed=%g + queued=%g + edge_sent=%g (slack %g)"
            inj bhi ovf que snt slack
          :: !bad;
      let serving = snt -. dlv -. drp in
      if serving < -0.5 then
        bad :=
          v "conservation"
            "edge pipes completed more packets than they fetched: \
             edge_sent=%g edge_delivered=%g edge_dropped=%g"
            snt dlv drp
          :: !bad;
      if bhd > dlv +. 0.5 then
        bad :=
          v "conservation"
            "more packets blackholed on delivery (%g) than delivered by edge \
             pipes (%g)" bhd dlv
          :: !bad;
      List.rev !bad
  | _ -> []

(* Per-source trace identity: a [Packet_sent] at a link is a service
   completion, immediately followed by the loss decision, so sources
   that emit sends must balance exactly. Blackhole drops are tagged
   [detail = "fault"] and belong to [fault_drops], not the loss
   processes, so they are excluded; the single-hop multicast channel
   offers every send to each subscriber, hence the multiplier. *)
let trace_checks outcome =
  if outcome.Scenario.events_dropped > 0 then []
  else begin
    let mult_for src =
      match outcome.Scenario.scenario with
      | Scenario.Core
          { Experiment.protocol = Experiment.Multicast { receivers; _ };
            topology = Experiment.Single_hop;
            _ }
        when String.equal src "multicast.data" ->
          receivers
      | _ -> 1
    in
    let tbl : (string, int array) Hashtbl.t = Hashtbl.create 16 in
    let bump src i =
      let c =
        match Hashtbl.find_opt tbl src with
        | Some c -> c
        | None ->
            let c = [| 0; 0; 0 |] in
            Hashtbl.add tbl src c;
            c
      in
      c.(i) <- c.(i) + 1
    in
    List.iter
      (fun ev ->
        match ev.Trace.kind with
        | Trace.Packet_sent -> bump ev.Trace.src 0
        | Trace.Packet_delivered -> bump ev.Trace.src 1
        | Trace.Packet_dropped when not (String.equal ev.Trace.detail "fault")
          ->
            bump ev.Trace.src 2
        | _ -> ())
      outcome.Scenario.events;
    (* report in sorted source order: Hashtbl.fold visits buckets in an
       unspecified order, and the violation list is part of what the
       replay oracle compares *)
    let sources =
      (* lint: allow D003 key harvest only; the very next line sorts, so bucket order cannot leak *)
      List.sort String.compare (Hashtbl.fold (fun src _ acc -> src :: acc) tbl [])
    in
    List.filter_map
      (fun src ->
        let c = Hashtbl.find tbl src in
        if c.(0) = 0 then None
        else
          let expect = c.(0) * mult_for src in
          if expect <> c.(1) + c.(2) then
            Some
              (v "conservation"
                 "trace imbalance at %s: %d sent (x%d offers) but %d \
                  delivered + %d dropped"
                 src c.(0) (mult_for src) c.(1) c.(2))
          else None)
      sources
  end

let conservation outcome =
  let triple =
    match outcome.Scenario.payload with
    | Scenario.Sstp_result _ -> []
    | Scenario.Gossip_result r ->
        let module G = Softstate_core.Gossip in
        (* every contact is classified exactly once *)
        let classified =
          r.G.deliveries + r.G.redundant + r.G.misses + r.G.lost
          + r.G.blackholed
        in
        let bad = ref [] in
        if classified <> r.G.transmissions then
          bad :=
            v "conservation"
              "gossip contacts unaccounted for: transmissions=%d but \
               deliveries=%d + redundant=%d + misses=%d + lost=%d + \
               blackholed=%d = %d"
              r.G.transmissions r.G.deliveries r.G.redundant r.G.misses
              r.G.lost r.G.blackholed classified
            :: !bad;
        let initial =
          match outcome.Scenario.scenario with
          | Scenario.Gossip g -> min g.Experiment.g_initial r.G.nodes
          | _ -> 0
        in
        if r.G.infected <> initial + r.G.deliveries then
          bad :=
            v "conservation"
              "gossip infection ledger broken: infected=%d but initial=%d + \
               deliveries=%d"
              r.G.infected initial r.G.deliveries
            :: !bad;
        List.rev !bad
    | Scenario.Core_result r ->
        let slack =
          r.Experiment.packets_sent - r.Experiment.packets_delivered
          - r.Experiment.packets_dropped
        in
        let bound = server_bound outcome.Scenario.scenario in
        if
          r.Experiment.packets_sent < 0 || r.Experiment.packets_delivered < 0
          || r.Experiment.packets_dropped < 0
        then
          [ v "conservation" "negative packet counter: sent=%d delivered=%d \
                              dropped=%d"
              r.Experiment.packets_sent r.Experiment.packets_delivered
              r.Experiment.packets_dropped ]
        else if slack < 0 then
          [ v "conservation"
              "more packets completed than were sent: sent=%d delivered=%d \
               dropped=%d (slack %d)"
              r.Experiment.packets_sent r.Experiment.packets_delivered
              r.Experiment.packets_dropped slack ]
        else if slack > bound then
          [ v "conservation"
              "%d packets unaccounted for (max %d can be in service): \
               sent=%d delivered=%d dropped=%d"
              slack bound r.Experiment.packets_sent
              r.Experiment.packets_delivered r.Experiment.packets_dropped ]
        else []
  in
  triple @ substrate_checks outcome @ trace_checks outcome

(* ------------------------------------------------------------------ *)
(* clock *)

let clock outcome =
  let bad = ref [] in
  let last = ref neg_infinity in
  let horizon = outcome.Scenario.horizon in
  List.iter
    (fun ev ->
      let t = ev.Trace.time in
      if t < !last -. eps then
        bad :=
          v "clock" "time ran backwards at %s: %g after %g" ev.Trace.src t
            !last
          :: !bad;
      if t < -.eps || t > horizon +. 1e-6 then
        bad :=
          v "clock" "event at %s outside [0, %g]: t=%g" ev.Trace.src horizon t
          :: !bad;
      last := Float.max !last t)
    outcome.Scenario.events;
  List.rev !bad

(* ------------------------------------------------------------------ *)
(* consistency *)

let consistency outcome =
  let bad = ref [] in
  let unit_check what x =
    (* nan is an instant violation too: none of these quantities is
       allowed to be undefined at the end of a run *)
    if not (in_unit x) then
      bad := v "consistency" "%s = %g outside [0, 1]" what x :: !bad
  in
  (match outcome.Scenario.payload with
  | Scenario.Core_result r ->
      unit_check "avg_consistency" r.Experiment.avg_consistency;
      unit_check "final_consistency" r.Experiment.final_consistency;
      let last = ref neg_infinity in
      List.iter
        (fun (t, c) ->
          if t < !last -. eps then
            bad :=
              v "consistency" "series time ran backwards: %g after %g" t !last
              :: !bad;
          last := Float.max !last t;
          if t < -.eps || t > outcome.Scenario.horizon +. 1e-6 then
            bad := v "consistency" "series sample at t=%g outside run" t :: !bad;
          unit_check "series value" c)
        r.Experiment.series
  | Scenario.Sstp_result r ->
      unit_check "consistency" r.Scenario.consistency;
      unit_check "avg_consistency" r.Scenario.avg_consistency
  | Scenario.Gossip_result r ->
      (* the infected fraction is a monotone staircase on the round
         grid: time strictly increasing, fraction never decreasing
         (gossip has no uninfection) *)
      let module G = Softstate_core.Gossip in
      let last_t = ref neg_infinity and last_c = ref neg_infinity in
      Array.iter
        (fun (t, c) ->
          if t < !last_t -. eps then
            bad :=
              v "consistency" "series time ran backwards: %g after %g" t
                !last_t
              :: !bad;
          if c < !last_c -. eps then
            bad :=
              v "consistency" "infected fraction decreased: %g after %g" c
                !last_c
              :: !bad;
          unit_check "infected fraction" c;
          last_t := Float.max !last_t t;
          last_c := Float.max !last_c c)
        r.G.series);
  List.rev !bad

(* ------------------------------------------------------------------ *)
(* counters *)

let counters outcome =
  let bad = ref [] in
  let nonneg what x =
    if x < 0 then bad := v "counters" "%s = %d is negative" what x :: !bad
  in
  (match outcome.Scenario.payload with
  | Scenario.Core_result r ->
      List.iter
        (fun (what, x) -> nonneg what x)
        [ ("sent_hot", r.Experiment.sent_hot);
          ("sent_cold", r.Experiment.sent_cold);
          ("nacks_wanted", r.Experiment.nacks_wanted);
          ("nacks_sent", r.Experiment.nacks_sent);
          ("nacks_suppressed", r.Experiment.nacks_suppressed);
          ("nacks_delivered", r.Experiment.nacks_delivered);
          ("nack_overflows", r.Experiment.nack_overflows);
          ("reheats", r.Experiment.reheats);
          ("deliveries", r.Experiment.deliveries);
          ("transmissions", r.Experiment.transmissions);
          ("false_expiries", r.Experiment.false_expiries);
          ("stale_purged", r.Experiment.stale_purged);
          ("live_at_end", r.Experiment.live_at_end);
          ("fault_transitions", r.Experiment.fault_transitions);
          ("fault_drops", r.Experiment.fault_drops) ];
      if r.Experiment.nacks_delivered > r.Experiment.nacks_sent then
        bad :=
          v "counters" "nacks_delivered %d > nacks_sent %d"
            r.Experiment.nacks_delivered r.Experiment.nacks_sent
          :: !bad;
      if r.Experiment.nacks_sent > r.Experiment.nacks_wanted then
        bad :=
          v "counters" "nacks_sent %d > nacks_wanted %d"
            r.Experiment.nacks_sent r.Experiment.nacks_wanted
          :: !bad;
      if r.Experiment.nacks_suppressed > r.Experiment.nacks_wanted then
        bad :=
          v "counters" "nacks_suppressed %d > nacks_wanted %d"
            r.Experiment.nacks_suppressed r.Experiment.nacks_wanted
          :: !bad;
      if not (in_unit r.Experiment.utilisation) then
        bad :=
          v "counters" "utilisation %g outside [0, 1]"
            r.Experiment.utilisation
          :: !bad;
      let receivers =
        match outcome.Scenario.scenario with
        | Scenario.Core
            { Experiment.protocol = Experiment.Multicast { receivers; _ }; _ }
          ->
            receivers
        | _ -> 1
      in
      if r.Experiment.deliveries > r.Experiment.transmissions * receivers then
        bad :=
          v "counters" "first deliveries %d > transmissions %d x %d receivers"
            r.Experiment.deliveries r.Experiment.transmissions receivers
          :: !bad;
      (match outcome.Scenario.scenario with
      | Scenario.Core { Experiment.topology = Experiment.Single_hop; _ } ->
          if r.Experiment.fault_transitions <> 0 || r.Experiment.fault_drops <> 0
          then
            bad :=
              v "counters"
                "single-hop run reports fault activity: transitions=%d drops=%d"
                r.Experiment.fault_transitions r.Experiment.fault_drops
              :: !bad
      | _ -> ())
  | Scenario.Sstp_result r ->
      nonneg "data_packets" r.Scenario.data_packets;
      nonneg "feedback_packets" r.Scenario.feedback_packets;
      if not (in_unit r.Scenario.link_utilisation) then
        bad :=
          v "counters" "link_utilisation %g outside [0, 1]"
            r.Scenario.link_utilisation
          :: !bad
  | Scenario.Gossip_result r ->
      let module G = Softstate_core.Gossip in
      List.iter
        (fun (what, x) -> nonneg what x)
        [ ("nodes", r.G.nodes);
          ("rounds", r.G.rounds);
          ("infected", r.G.infected);
          ("transmissions", r.G.transmissions);
          ("deliveries", r.G.deliveries);
          ("redundant", r.G.redundant);
          ("misses", r.G.misses);
          ("lost", r.G.lost);
          ("blackholed", r.G.blackholed) ];
      if r.G.infected > r.G.nodes then
        bad :=
          v "counters" "infected %d > population %d" r.G.infected r.G.nodes
          :: !bad;
      if Array.length r.G.series <> r.G.rounds + 1 then
        bad :=
          v "counters" "series has %d samples for %d rounds (want rounds+1)"
            (Array.length r.G.series) r.G.rounds
          :: !bad;
      (match outcome.Scenario.scenario with
      | Scenario.Gossip g ->
          if r.G.rounds > g.Experiment.g_max_rounds then
            bad :=
              v "counters" "ran %d rounds, budget was %d" r.G.rounds
                g.Experiment.g_max_rounds
              :: !bad
      | _ -> ()));
  List.rev !bad

(* ------------------------------------------------------------------ *)
(* convergence *)

let convergence outcome =
  match outcome.Scenario.payload with
  | Scenario.Core_result _ | Scenario.Gossip_result _ -> []
  | Scenario.Sstp_result r -> (
      match r.Scenario.converged_after with
      | Some t when t <= outcome.Scenario.horizon +. eps -> []
      | Some t ->
          [ v "convergence" "claimed convergence at %g beyond horizon %g" t
              outcome.Scenario.horizon ]
      | None ->
          [ v "convergence"
              "session never converged (roots %s vs %s after %g s of grace)"
              r.Scenario.sender_root r.Scenario.receiver_root
              outcome.Scenario.horizon ])

(* ------------------------------------------------------------------ *)
(* replay / jobs (need a runner) *)

let replay rerun outcome =
  let again = rerun outcome.Scenario.scenario in
  if Stdlib.compare outcome again = 0 then []
  else
    let part =
      if Stdlib.compare outcome.Scenario.payload again.Scenario.payload <> 0
      then "results differ"
      else if
        Stdlib.compare outcome.Scenario.events again.Scenario.events <> 0
      then
        Printf.sprintf "traces differ (%d vs %d events)"
          (List.length outcome.Scenario.events)
          (List.length again.Scenario.events)
      else if
        Stdlib.compare outcome.Scenario.metrics again.Scenario.metrics <> 0
      then "metrics differ"
      else "outcomes differ"
    in
    [ v "replay" "re-running the same scenario diverged: %s" part ]

(* run_many must be jobs-invariant; keep it to short scenarios, it
   costs four extra runs *)
let jobs_horizon = 60.0

let jobs outcome =
  match outcome.Scenario.scenario with
  | Scenario.Core c when c.Experiment.duration <= jobs_horizon ->
      let c = { c with Experiment.obs = None; record_series = false } in
      let s1, r1 = Experiment.run_many ~jobs:1 ~replications:2 c in
      let s2, r2 = Experiment.run_many ~jobs:2 ~replications:2 c in
      if Stdlib.compare (s1, r1) (s2, r2) = 0 then []
      else [ v "jobs" "run_many differs between jobs:1 and jobs:2" ]
  | _ -> []

(* ------------------------------------------------------------------ *)

let names =
  [ "conservation"; "clock"; "consistency"; "counters"; "convergence";
    "replay"; "jobs" ]

let all ?rerun () =
  [ { name = "conservation"; check = conservation };
    { name = "clock"; check = clock };
    { name = "consistency"; check = consistency };
    { name = "counters"; check = counters };
    { name = "convergence"; check = convergence } ]
  @ (match rerun with
    | None -> []
    | Some rerun -> [ { name = "replay"; check = replay rerun } ])
  @ [ { name = "jobs"; check = jobs } ]

let select ?rerun wanted =
  match wanted with
  | [] -> Ok (all ?rerun ())
  | wanted -> (
      match List.find_opt (fun w -> not (List.mem w names)) wanted with
      | Some bad ->
          Error
            (Printf.sprintf "unknown oracle %S (have: %s)" bad
               (String.concat ", " names))
      | None ->
          Ok
            (List.filter
               (fun o -> List.mem o.name wanted)
               (all ?rerun ())))

let check oracles outcome =
  List.concat_map (fun o -> o.check outcome) oracles

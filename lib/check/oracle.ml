module Experiment = Softstate_core.Experiment
module Trace = Softstate_obs.Trace
module Metrics = Softstate_obs.Metrics
module Lifecycle = Softstate_obs.Lifecycle

type violation = { oracle : string; message : string }

type t = { name : string; check : Scenario.outcome -> violation list }

let v oracle fmt = Printf.ksprintf (fun message -> { oracle; message }) fmt

let eps = 1e-9

let in_unit x = x >= -.eps && x <= 1.0 +. eps

(* ------------------------------------------------------------------ *)
(* conservation *)

(* Upper bound on servers that can hold an in-flight packet at the
   horizon: head data link + feedback channel, plus two directed edge
   pipes per cable in topology mode (random graphs can reach the
   complete graph). *)
let server_bound = function
  | Scenario.Sstp _ -> 2
  | Scenario.Gossip _ -> 0 (* rounds are atomic: nothing is in flight *)
  | Scenario.Core c -> (
      match c.Experiment.topology with
      | Experiment.Single_hop -> 2
      | Experiment.Star { leaves } -> 2 + (2 * leaves)
      | Experiment.Chain { hops } -> 2 + (2 * hops)
      | Experiment.Kary_tree { arity; depth } ->
          let nodes = ref 1 and layer = ref 1 in
          for _ = 1 to depth do
            layer := !layer * arity;
            nodes := !nodes + !layer
          done;
          2 + (2 * (!nodes - 1))
      | Experiment.Random_graph { nodes; _ } -> 2 + (nodes * (nodes - 1)))

let metric_num outcome name =
  match List.assoc_opt name outcome.Scenario.metrics with
  | Some (Metrics.Float x) -> Some x
  | Some (Metrics.Int i) -> Some (float_of_int i)
  | _ -> None

let substrate_checks note outcome =
  (* the 8 substrate probes a topology registers under its label
     (Experiment uses the default, "topo") *)
  let get n = metric_num outcome ("topo." ^ n) in
  match
    ( get "injected", get "blackholed_inject", get "blackholed_deliver",
      get "overflowed", get "queued", get "edge_sent", get "edge_delivered",
      get "edge_dropped" )
  with
  | Some inj, Some bhi, Some bhd, Some ovf, Some que, Some snt, Some dlv,
    Some drp ->
      note "conservation:substrate";
      let bad = ref [] in
      let slack = inj -. bhi -. ovf -. que -. snt in
      if Float.abs slack > 0.5 then
        bad :=
          v "conservation"
            "substrate identity broken: injected=%g but blackholed_inject=%g \
             + overflowed=%g + queued=%g + edge_sent=%g (slack %g)"
            inj bhi ovf que snt slack
          :: !bad;
      let serving = snt -. dlv -. drp in
      if serving < -0.5 then
        bad :=
          v "conservation"
            "edge pipes completed more packets than they fetched: \
             edge_sent=%g edge_delivered=%g edge_dropped=%g"
            snt dlv drp
          :: !bad;
      if bhd > dlv +. 0.5 then
        bad :=
          v "conservation"
            "more packets blackholed on delivery (%g) than delivered by edge \
             pipes (%g)" bhd dlv
          :: !bad;
      List.rev !bad
  | _ -> []

(* Per-source trace identity: a [Packet_sent] at a link is a service
   completion, immediately followed by the loss decision, so sources
   that emit sends must balance exactly. Blackhole drops are tagged
   [detail = "fault"] and belong to [fault_drops], not the loss
   processes, so they are excluded; the single-hop multicast channel
   offers every send to each subscriber, hence the multiplier. *)
let trace_checks note outcome =
  if outcome.Scenario.events_dropped > 0 then []
  else begin
    note "conservation:trace";
    let mult_for src =
      match outcome.Scenario.scenario with
      | Scenario.Core
          { Experiment.protocol = Experiment.Multicast { receivers; _ };
            topology = Experiment.Single_hop;
            _ }
        when String.equal src "multicast.data" ->
          receivers
      | _ -> 1
    in
    let tbl : (string, int array) Hashtbl.t = Hashtbl.create 16 in
    let bump src i =
      let c =
        match Hashtbl.find_opt tbl src with
        | Some c -> c
        | None ->
            let c = [| 0; 0; 0 |] in
            Hashtbl.add tbl src c;
            c
      in
      c.(i) <- c.(i) + 1
    in
    List.iter
      (fun ev ->
        match ev.Trace.kind with
        | Trace.Packet_sent -> bump ev.Trace.src 0
        | Trace.Packet_delivered -> bump ev.Trace.src 1
        | Trace.Packet_dropped when not (String.equal ev.Trace.detail "fault")
          ->
            bump ev.Trace.src 2
        | _ -> ())
      outcome.Scenario.events;
    (* report in sorted source order: Hashtbl.fold visits buckets in an
       unspecified order, and the violation list is part of what the
       replay oracle compares *)
    let sources =
      (* lint: allow D003 key harvest only; the very next line sorts, so bucket order cannot leak *)
      List.sort String.compare (Hashtbl.fold (fun src _ acc -> src :: acc) tbl [])
    in
    List.filter_map
      (fun src ->
        let c = Hashtbl.find tbl src in
        if c.(0) = 0 then None
        else
          let expect = c.(0) * mult_for src in
          if expect <> c.(1) + c.(2) then
            Some
              (v "conservation"
                 "trace imbalance at %s: %d sent (x%d offers) but %d \
                  delivered + %d dropped"
                 src c.(0) (mult_for src) c.(1) c.(2))
          else None)
      sources
  end

let conservation note outcome =
  let triple =
    match outcome.Scenario.payload with
    | Scenario.Sstp_result _ ->
        note "conservation:sstp";
        []
    | Scenario.Gossip_result r ->
        note "conservation:gossip";
        let module G = Softstate_core.Gossip in
        (* every contact is classified exactly once *)
        let classified =
          r.G.deliveries + r.G.redundant + r.G.misses + r.G.lost
          + r.G.blackholed
        in
        let bad = ref [] in
        if classified <> r.G.transmissions then
          bad :=
            v "conservation"
              "gossip contacts unaccounted for: transmissions=%d but \
               deliveries=%d + redundant=%d + misses=%d + lost=%d + \
               blackholed=%d = %d"
              r.G.transmissions r.G.deliveries r.G.redundant r.G.misses
              r.G.lost r.G.blackholed classified
            :: !bad;
        let initial =
          match outcome.Scenario.scenario with
          | Scenario.Gossip g -> min g.Experiment.g_initial r.G.nodes
          | _ -> 0
        in
        if r.G.infected <> initial + r.G.deliveries then
          bad :=
            v "conservation"
              "gossip infection ledger broken: infected=%d but initial=%d + \
               deliveries=%d"
              r.G.infected initial r.G.deliveries
            :: !bad;
        List.rev !bad
    | Scenario.Core_result r ->
        note "conservation:core";
        let slack =
          r.Experiment.packets_sent - r.Experiment.packets_delivered
          - r.Experiment.packets_dropped
        in
        let bound = server_bound outcome.Scenario.scenario in
        if
          r.Experiment.packets_sent < 0 || r.Experiment.packets_delivered < 0
          || r.Experiment.packets_dropped < 0
        then
          [ v "conservation" "negative packet counter: sent=%d delivered=%d \
                              dropped=%d"
              r.Experiment.packets_sent r.Experiment.packets_delivered
              r.Experiment.packets_dropped ]
        else if slack < 0 then
          [ v "conservation"
              "more packets completed than were sent: sent=%d delivered=%d \
               dropped=%d (slack %d)"
              r.Experiment.packets_sent r.Experiment.packets_delivered
              r.Experiment.packets_dropped slack ]
        else if slack > bound then
          [ v "conservation"
              "%d packets unaccounted for (max %d can be in service): \
               sent=%d delivered=%d dropped=%d"
              slack bound r.Experiment.packets_sent
              r.Experiment.packets_delivered r.Experiment.packets_dropped ]
        else []
  in
  triple @ substrate_checks note outcome @ trace_checks note outcome

(* ------------------------------------------------------------------ *)
(* clock *)

let clock note outcome =
  note
    (if outcome.Scenario.events = [] then "clock:empty" else "clock:events");
  let bad = ref [] in
  let last = ref neg_infinity in
  let horizon = outcome.Scenario.horizon in
  List.iter
    (fun ev ->
      let t = ev.Trace.time in
      if t < !last -. eps then
        bad :=
          v "clock" "time ran backwards at %s: %g after %g" ev.Trace.src t
            !last
          :: !bad;
      if t < -.eps || t > horizon +. 1e-6 then
        bad :=
          v "clock" "event at %s outside [0, %g]: t=%g" ev.Trace.src horizon t
          :: !bad;
      last := Float.max !last t)
    outcome.Scenario.events;
  List.rev !bad

(* ------------------------------------------------------------------ *)
(* consistency *)

let consistency note outcome =
  let bad = ref [] in
  let unit_check what x =
    (* nan is an instant violation too: none of these quantities is
       allowed to be undefined at the end of a run *)
    if not (in_unit x) then
      bad := v "consistency" "%s = %g outside [0, 1]" what x :: !bad
  in
  (match outcome.Scenario.payload with
  | Scenario.Core_result r ->
      note "consistency:core";
      unit_check "avg_consistency" r.Experiment.avg_consistency;
      unit_check "final_consistency" r.Experiment.final_consistency;
      let last = ref neg_infinity in
      List.iter
        (fun (t, c) ->
          if t < !last -. eps then
            bad :=
              v "consistency" "series time ran backwards: %g after %g" t !last
              :: !bad;
          last := Float.max !last t;
          if t < -.eps || t > outcome.Scenario.horizon +. 1e-6 then
            bad := v "consistency" "series sample at t=%g outside run" t :: !bad;
          unit_check "series value" c)
        r.Experiment.series
  | Scenario.Sstp_result r ->
      note "consistency:sstp";
      unit_check "consistency" r.Scenario.consistency;
      unit_check "avg_consistency" r.Scenario.avg_consistency
  | Scenario.Gossip_result r ->
      note "consistency:gossip";
      (* the infected fraction is a monotone staircase on the round
         grid: time strictly increasing, fraction never decreasing
         (gossip has no uninfection) *)
      let module G = Softstate_core.Gossip in
      let last_t = ref neg_infinity and last_c = ref neg_infinity in
      Array.iter
        (fun (t, c) ->
          if t < !last_t -. eps then
            bad :=
              v "consistency" "series time ran backwards: %g after %g" t
                !last_t
              :: !bad;
          if c < !last_c -. eps then
            bad :=
              v "consistency" "infected fraction decreased: %g after %g" c
                !last_c
              :: !bad;
          unit_check "infected fraction" c;
          last_t := Float.max !last_t t;
          last_c := Float.max !last_c c)
        r.G.series);
  List.rev !bad

(* ------------------------------------------------------------------ *)
(* counters *)

let counters note outcome =
  let bad = ref [] in
  let nonneg what x =
    if x < 0 then bad := v "counters" "%s = %d is negative" what x :: !bad
  in
  (match outcome.Scenario.payload with
  | Scenario.Core_result r ->
      note "counters:core";
      List.iter
        (fun (what, x) -> nonneg what x)
        [ ("sent_hot", r.Experiment.sent_hot);
          ("sent_cold", r.Experiment.sent_cold);
          ("nacks_wanted", r.Experiment.nacks_wanted);
          ("nacks_sent", r.Experiment.nacks_sent);
          ("nacks_suppressed", r.Experiment.nacks_suppressed);
          ("nacks_delivered", r.Experiment.nacks_delivered);
          ("nack_overflows", r.Experiment.nack_overflows);
          ("reheats", r.Experiment.reheats);
          ("deliveries", r.Experiment.deliveries);
          ("transmissions", r.Experiment.transmissions);
          ("false_expiries", r.Experiment.false_expiries);
          ("stale_purged", r.Experiment.stale_purged);
          ("live_at_end", r.Experiment.live_at_end);
          ("fault_transitions", r.Experiment.fault_transitions);
          ("fault_drops", r.Experiment.fault_drops) ];
      if r.Experiment.nacks_delivered > r.Experiment.nacks_sent then
        bad :=
          v "counters" "nacks_delivered %d > nacks_sent %d"
            r.Experiment.nacks_delivered r.Experiment.nacks_sent
          :: !bad;
      if r.Experiment.nacks_sent > r.Experiment.nacks_wanted then
        bad :=
          v "counters" "nacks_sent %d > nacks_wanted %d"
            r.Experiment.nacks_sent r.Experiment.nacks_wanted
          :: !bad;
      if r.Experiment.nacks_suppressed > r.Experiment.nacks_wanted then
        bad :=
          v "counters" "nacks_suppressed %d > nacks_wanted %d"
            r.Experiment.nacks_suppressed r.Experiment.nacks_wanted
          :: !bad;
      if not (in_unit r.Experiment.utilisation) then
        bad :=
          v "counters" "utilisation %g outside [0, 1]"
            r.Experiment.utilisation
          :: !bad;
      let receivers =
        match outcome.Scenario.scenario with
        | Scenario.Core
            { Experiment.protocol = Experiment.Multicast { receivers; _ }; _ }
          ->
            receivers
        | _ -> 1
      in
      if r.Experiment.deliveries > r.Experiment.transmissions * receivers then
        bad :=
          v "counters" "first deliveries %d > transmissions %d x %d receivers"
            r.Experiment.deliveries r.Experiment.transmissions receivers
          :: !bad;
      (match outcome.Scenario.scenario with
      | Scenario.Core { Experiment.topology = Experiment.Single_hop; _ } ->
          note "counters:single-hop";
          if r.Experiment.fault_transitions <> 0 || r.Experiment.fault_drops <> 0
          then
            bad :=
              v "counters"
                "single-hop run reports fault activity: transitions=%d drops=%d"
                r.Experiment.fault_transitions r.Experiment.fault_drops
              :: !bad
      | _ -> ())
  | Scenario.Sstp_result r ->
      note "counters:sstp";
      nonneg "data_packets" r.Scenario.data_packets;
      nonneg "feedback_packets" r.Scenario.feedback_packets;
      if not (in_unit r.Scenario.link_utilisation) then
        bad :=
          v "counters" "link_utilisation %g outside [0, 1]"
            r.Scenario.link_utilisation
          :: !bad
  | Scenario.Gossip_result r ->
      note "counters:gossip";
      let module G = Softstate_core.Gossip in
      List.iter
        (fun (what, x) -> nonneg what x)
        [ ("nodes", r.G.nodes);
          ("rounds", r.G.rounds);
          ("infected", r.G.infected);
          ("transmissions", r.G.transmissions);
          ("deliveries", r.G.deliveries);
          ("redundant", r.G.redundant);
          ("misses", r.G.misses);
          ("lost", r.G.lost);
          ("blackholed", r.G.blackholed) ];
      if r.G.infected > r.G.nodes then
        bad :=
          v "counters" "infected %d > population %d" r.G.infected r.G.nodes
          :: !bad;
      if Array.length r.G.series <> r.G.rounds + 1 then
        bad :=
          v "counters" "series has %d samples for %d rounds (want rounds+1)"
            (Array.length r.G.series) r.G.rounds
          :: !bad;
      (match outcome.Scenario.scenario with
      | Scenario.Gossip g ->
          if r.G.rounds > g.Experiment.g_max_rounds then
            bad :=
              v "counters" "ran %d rounds, budget was %d" r.G.rounds
                g.Experiment.g_max_rounds
              :: !bad
      | _ -> ()));
  List.rev !bad

(* ------------------------------------------------------------------ *)
(* convergence *)

let convergence note outcome =
  match outcome.Scenario.payload with
  | Scenario.Core_result _ | Scenario.Gossip_result _ -> []
  | Scenario.Sstp_result r -> (
      match r.Scenario.converged_after with
      | Some t when t <= outcome.Scenario.horizon +. eps ->
          note "convergence:converged";
          []
      | Some t ->
          [ v "convergence" "claimed convergence at %g beyond horizon %g" t
              outcome.Scenario.horizon ]
      | None ->
          note "convergence:never";
          [ v "convergence"
              "session never converged (roots %s vs %s after %g s of grace)"
              r.Scenario.sender_root r.Scenario.receiver_root
              outcome.Scenario.horizon ])

(* ------------------------------------------------------------------ *)
(* replay / jobs (need a runner) *)

let replay note rerun outcome =
  let again = rerun outcome.Scenario.scenario in
  if Stdlib.compare outcome again = 0 then begin
    note "replay:equal";
    []
  end
  else begin
    note "replay:diverged";
    let part =
      if Stdlib.compare outcome.Scenario.payload again.Scenario.payload <> 0
      then "results differ"
      else if
        Stdlib.compare outcome.Scenario.events again.Scenario.events <> 0
      then
        Printf.sprintf "traces differ (%d vs %d events)"
          (List.length outcome.Scenario.events)
          (List.length again.Scenario.events)
      else if
        Stdlib.compare outcome.Scenario.metrics again.Scenario.metrics <> 0
      then "metrics differ"
      else "outcomes differ"
    in
    [ v "replay" "re-running the same scenario diverged: %s" part ]
  end

(* run_many must be jobs-invariant; keep it to short scenarios, it
   costs four extra runs *)
let jobs_horizon = 60.0

let jobs note outcome =
  match outcome.Scenario.scenario with
  | Scenario.Core c when c.Experiment.duration <= jobs_horizon ->
      note "jobs:ran";
      let c = { c with Experiment.obs = None; record_series = false } in
      let s1, r1 = Experiment.run_many ~jobs:1 ~replications:2 c in
      let s2, r2 = Experiment.run_many ~jobs:2 ~replications:2 c in
      if Stdlib.compare (s1, r1) (s2, r2) = 0 then []
      else [ v "jobs" "run_many differs between jobs:1 and jobs:2" ]
  | _ ->
      note "jobs:skipped";
      []

(* ------------------------------------------------------------------ *)
(* backlog: NACK-repair stability *)

(* The depth series is cut into this many buckets of the horizon; the
   instability test compares the first and second halves, so the
   resolution must be even and coarse enough that a bucket holds a few
   slotting delays' worth of activity. *)
let backlog_buckets = 32

type backlog_stats = {
  b_buckets : int;          (** depth-series points actually observed *)
  b_peak : int;             (** max outstanding repair requests *)
  b_final : int;            (** outstanding in the last observed bucket *)
  b_nack_quarters : int array;
      (** NACK/query issues per run quarter, length 4 *)
  b_repair_total : int;
  b_nack_total : int;
}

let backlog_measure outcome =
  match outcome.Scenario.payload with
  | Scenario.Sstp_result _ | Scenario.Gossip_result _ -> None
  | Scenario.Core_result _ ->
      if
        outcome.Scenario.events_dropped > 0
        || outcome.Scenario.horizon <= 0.0
        || not
             (List.exists
                (fun ev ->
                  match ev.Trace.kind with
                  | Trace.Nack | Trace.Query -> true
                  | _ -> false)
                outcome.Scenario.events)
      then None
      else begin
        let lc = Lifecycle.of_event_list outcome.Scenario.events in
        let bucket =
          outcome.Scenario.horizon /. float_of_int backlog_buckets
        in
        let pts =
          Array.of_list (Lifecycle.nack_depth_series lc ~bucket)
        in
        let n = Array.length pts in
        (* the series stops at the last event: missing tail buckets
           mean the feedback channel went quiet early, which is a
           drained backlog, not a growing one *)
        if n < backlog_buckets / 2 then None
        else begin
          let quarters = Array.make 4 0 in
          let peak = ref 0 and nacks = ref 0 and repairs = ref 0 in
          Array.iteri
            (fun i (p : Lifecycle.depth_point) ->
              let q = min 3 (4 * i / n) in
              quarters.(q) <- quarters.(q) + p.Lifecycle.nacks;
              peak := max !peak p.Lifecycle.outstanding;
              nacks := !nacks + p.Lifecycle.nacks;
              repairs := !repairs + p.Lifecycle.repairs)
            pts;
          Some
            { b_buckets = n;
              b_peak = !peak;
              b_final = pts.(n - 1).Lifecycle.outstanding;
              b_nack_quarters = quarters;
              b_repair_total = !repairs;
              b_nack_total = !nacks }
        end
      end

(* Thresholds picked against the default fuzz battery. A finite lossy
   run normally shows a *flat* NACK issue rate (steady state, however
   loaded) or a fault-window spike that decays before the horizon;
   linear growth of open repair spans is routine because keys that die
   unrepaired never close their span. The implosion signature is the
   issue rate itself accelerating quarter over quarter all the way to
   the horizon: the repair plant is falling further behind while
   arrivals keep feeding it. *)
let backlog_growth = 1.3
let backlog_late_floor = 64

let backlog_deficit = 3.0

(* The implosion transition is abrupt: once the repair branching ratio
   exceeds one, the NACK rate sweeps from near-zero to the service cap
   within a generation or two. So the reliable growth signature is not
   smooth quarter-over-quarter acceleration (early quarters are often
   exactly zero) but onset without recovery: the final quarter carries
   substantial volume, dwarfs both early quarters, and has not decayed
   from the run's peak quarter — the run ends inside a storm that
   built up during it. Growth alone cannot separate an imploding
   repair loop from an arrival process that merely keeps adding keys
   (refresh traffic, and with it NACK volume, scales with the live
   population), so the second conjunct is the feedback amplification
   ratio: an unstable loop shouts [backlog_deficit] or more NACKs for
   every repair it actually lands, where a damped or subcritical loop
   stays near one-for-one. A loaded steady state is flat (q4 ~ q2) and
   passes; a fault-window spike decays (q4 << peak) and passes. *)
let backlog_unstable m =
  match m.b_nack_quarters with
  | [| q1; q2; q3; q4 |] ->
      let dwarfs early =
        float_of_int q4 >= (backlog_growth *. float_of_int early) +. 1.0
      in
      let peak_q = max (max q1 q2) (max q3 q4) in
      q4 >= backlog_late_floor
      && dwarfs q1 && dwarfs q2
      && float_of_int q4 >= 0.8 *. float_of_int peak_q
      && float_of_int m.b_nack_total
         >= backlog_deficit *. float_of_int m.b_repair_total
  | _ -> false

let backlog note outcome =
  match backlog_measure outcome with
  | None ->
      note "backlog:skipped";
      []
  | Some m ->
      note "backlog:series";
      if backlog_unstable m then begin
        note "backlog:unstable";
        let q = m.b_nack_quarters in
        [ v "backlog"
            "NACK storm builds up and never recovers: %d -> %d -> %d -> %d \
             issues per quarter (%d repairs against %d NACKs, %d spans \
             still open)"
            q.(0) q.(1) q.(2) q.(3) m.b_repair_total m.b_nack_total m.b_final ]
      end
      else []

(* ------------------------------------------------------------------ *)

let names =
  [ "conservation"; "clock"; "consistency"; "counters"; "convergence";
    "backlog"; "replay"; "jobs" ]

(* Every coverage bucket an oracle can note; the fuzzer's coverage map
   scores branch coverage against this catalogue. *)
let branches =
  [ "conservation:core"; "conservation:gossip"; "conservation:sstp";
    "conservation:substrate"; "conservation:trace"; "clock:events";
    "clock:empty"; "consistency:core"; "consistency:gossip";
    "consistency:sstp"; "counters:core"; "counters:gossip"; "counters:sstp";
    "counters:single-hop"; "convergence:converged"; "convergence:never";
    "backlog:series"; "backlog:skipped"; "backlog:unstable"; "replay:equal";
    "replay:diverged"; "jobs:ran"; "jobs:skipped" ]

let all ?(note = fun _ -> ()) ?rerun () =
  [ { name = "conservation"; check = conservation note };
    { name = "clock"; check = clock note };
    { name = "consistency"; check = consistency note };
    { name = "counters"; check = counters note };
    { name = "convergence"; check = convergence note };
    { name = "backlog"; check = backlog note } ]
  @ (match rerun with
    | None -> []
    | Some rerun -> [ { name = "replay"; check = replay note rerun } ])
  @ [ { name = "jobs"; check = jobs note } ]

let select ?note ?rerun wanted =
  match wanted with
  | [] -> Ok (all ?note ?rerun ())
  | wanted -> (
      match List.find_opt (fun w -> not (List.mem w names)) wanted with
      | Some bad ->
          Error
            (Printf.sprintf "unknown oracle %S (have: %s)" bad
               (String.concat ", " names))
      | None ->
          Ok
            (List.filter
               (fun o -> List.mem o.name wanted)
               (all ?note ?rerun ())))

let check oracles outcome =
  List.concat_map (fun o -> o.check outcome) oracles

(** Greedy scenario shrinking.

    Given a failing scenario and a predicate that re-runs a candidate
    and reports whether it still fails, walk a ladder of
    simplifications — halve the horizon, drop fault windows, prune
    receivers, simplify the topology toward [Single_hop], walk the
    protocol down toward open loop — and keep the first candidate at
    each step that still fails. The result is a locally minimal
    failing scenario: no single simplification in the ladder makes it
    pass. *)

val candidates : Scenario.t -> Scenario.t list
(** Strictly simpler variants, most aggressive first. Every candidate
    has a strictly smaller {!measure} than its parent. *)

val measure : Scenario.t -> float
(** A scalar complexity every ladder rung strictly decreases —
    shrinking's termination argument, checked by a property test
    rather than trusted. *)

val shrink :
  fails:(Scenario.t -> bool) ->
  max_runs:int ->
  Scenario.t ->
  Scenario.t * int
(** [shrink ~fails ~max_runs s] assumes [fails s] already holds.
    Returns the shrunk scenario and the number of candidate runs
    spent (at most [max_runs]). *)

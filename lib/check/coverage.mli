(** Coverage map for the coverage-guided fuzzer.

    Three dimensions, each a bucket → hit-count table:

    - {b features}: static scenario-shape buckets from
      {!Scenario.features} — what the generator {e produced};
    - {b events}: trace-event kinds observed in run outcomes — what the
      simulation {e did};
    - {b branches}: oracle code paths exercised while checking — what
      the checker {e saw}.

    The map is deterministic and serializable: {!to_string} is sorted
    and byte-stable, and [of_string (to_string t)] round-trips
    exactly, so coverage tables can be persisted across fuzz runs and
    diffed in CI. *)

type t

val create : unit -> t
(** Empty map. *)

val copy : t -> t
(** Independent snapshot; later notes on either side don't alias. *)

(** {1 Recording} *)

val note_feature : t -> string -> unit
val note_event : t -> string -> unit
val note_branch : t -> string -> unit

val note_scenario : t -> Scenario.t -> unit
(** Record every {!Scenario.features} bucket of the scenario. *)

val note_outcome : t -> Scenario.outcome -> unit
(** Record the {!Softstate_obs.Trace.kind} of every memory-trace
    event in the outcome. *)

val merge : t -> t -> t
(** Pointwise sum of hit counts. *)

(** {1 Inspection} *)

val seen_features : t -> string list
(** Sorted distinct feature buckets hit so far. *)

val seen_events : t -> string list
val seen_branches : t -> string list

val feature_count : t -> int
(** [List.length (seen_features t)], without building the list. *)

val unseen_features : t -> string list
(** Catalogue entries not yet hit — what the guided generator should
    steer toward. *)

val event_catalogue : string list
(** Every non-[Custom] trace-event kind, sorted. *)

val feature_fraction : t -> float
(** Fraction of {!Scenario.feature_catalogue} hit, in [\[0, 1\]]. *)

val event_fraction : t -> float
(** Fraction of {!event_catalogue} hit. *)

(** {1 Persistence} *)

val to_string : t -> string
(** One ["dim\tbucket\tcount"] line per entry, sorted by dimension
    then bucket — equal maps serialize byte-identically. *)

val of_string : string -> (t, string) result
(** Exact inverse of {!to_string}; blank lines are ignored. *)

val report : t -> string
(** Human-readable multi-line summary: per-dimension hit/total
    fractions, per-bucket counts, and MISSING lines for catalogue
    entries not yet covered. *)

module Rng = Softstate_util.Rng
module Json = Softstate_obs.Json
module Trace = Softstate_obs.Trace

type failure = {
  index : int;
  scenario : Scenario.t;
  violations : Oracle.violation list;
  shrunk : Scenario.t;
  shrunk_violations : Oracle.violation list;
  shrink_runs : int;
  flight : Trace.event list;
}

type stats = {
  scenarios : int;
  runs : int;
  failures : failure list;
  coverage : Coverage.t;
}

let scenario_seeds ~seed ~count =
  let chain = Rng.create seed in
  Array.init count (fun _ ->
      Int64.to_int (Int64.shift_right_logical (Rng.bits64 chain) 1))

let id x = x

let oracle_battery ?(corrupt = id) ?note names =
  let rerun s = corrupt (Scenario.run s) in
  match Oracle.select ?note ~rerun names with
  | Ok oracles -> (rerun, oracles)
  | Error e -> invalid_arg ("Fuzz: " ^ e)

(* CoreSim-style seed-chain guidance: draw a few candidate scenarios
   sequentially from the scenario's own rng and keep the one touching
   the most feature buckets the run has not seen yet. Candidate 1 is
   exactly the uniform generator's scenario, so guidance can only add
   draws, never perturb the unguided stream. *)
let generate_candidate ~coverage ~candidates scenario_seed =
  let rng = Rng.create scenario_seed in
  let first = Scenario.generate rng in
  if candidates <= 1 then first
  else begin
    let unseen = Coverage.unseen_features coverage in
    let score s =
      List.length
        (List.filter (fun f -> List.mem f unseen) (Scenario.features s))
    in
    let best = ref first and best_score = ref (score first) in
    for _ = 2 to candidates do
      let s = Scenario.generate rng in
      let sc = score s in
      if sc > !best_score then begin
        best := s;
        best_score := sc
      end
    done;
    !best
  end

let check_scenario ?corrupt ?(oracles = []) scenario =
  let rerun, battery = oracle_battery ?corrupt oracles in
  Oracle.check battery (rerun scenario)

let reproducer f =
  let replay =
    Printf.sprintf "softstate_fuzz --replay '%s'"
      (Scenario.to_string f.shrunk)
  in
  match Scenario.to_cli f.shrunk with
  | Some cli -> replay ^ "\n" ^ cli
  | None -> replay

let violations_json vs =
  Json.list
    (List.map
       (fun v ->
         Json.obj
           [ ("oracle", Json.string v.Oracle.oracle);
             ("message", Json.string v.Oracle.message) ])
       vs)

let failure_to_json f =
  Json.obj
    [ ("index", Json.int f.index);
      ("scenario", Json.string (Scenario.to_string f.scenario));
      ("violations", violations_json f.violations);
      ("shrunk", Json.string (Scenario.to_string f.shrunk));
      ("shrunk_violations", violations_json f.shrunk_violations);
      ("shrink_runs", Json.int f.shrink_runs);
      ("reproducer", Json.string (reproducer f));
      (* the shrunk rerun's flight recorder: the last events before
         measurement stopped, each already a JSON object line *)
      ("flight", Json.list (List.map Trace.to_json f.flight)) ]

let run ?corrupt ?(oracles = []) ?(max_shrink = 200) ?log ?on_progress
    ?(guided = false) ?(candidates = 4) ~seed ~count () =
  let coverage = Coverage.create () in
  let rerun, battery =
    oracle_battery ?corrupt ~note:(Coverage.note_branch coverage) oracles
  in
  let seeds = scenario_seeds ~seed ~count in
  let runs = ref 0 in
  let failures = ref [] in
  Array.iteri
    (fun index scenario_seed ->
      let scenario =
        if guided then generate_candidate ~coverage ~candidates scenario_seed
        else Scenario.generate (Rng.create scenario_seed)
      in
      Coverage.note_scenario coverage scenario;
      incr runs;
      let outcome = rerun scenario in
      Coverage.note_outcome coverage outcome;
      let violations = Oracle.check battery outcome in
      (match violations with
      | [] -> ()
      | violations ->
          let fails s =
            incr runs;
            Oracle.check battery (rerun s) <> []
          in
          let shrunk, shrink_runs =
            Shrink.shrink ~fails ~max_runs:max_shrink scenario
          in
          incr runs;
          let shrunk_outcome = rerun shrunk in
          let shrunk_violations = Oracle.check battery shrunk_outcome in
          let failure =
            { index; scenario; violations; shrunk; shrunk_violations;
              shrink_runs; flight = shrunk_outcome.Scenario.flight }
          in
          failures := failure :: !failures;
          Option.iter (fun f -> f (failure_to_json failure ^ "\n")) log);
      Option.iter (fun f -> f index) on_progress)
    seeds;
  { scenarios = count;
    runs = !runs;
    failures = List.rev !failures;
    coverage }

(* Generation-only coverage comparison: what fraction of the feature
   catalogue does a [count]-scenario chain touch, without running
   anything? Cheap enough for a bench row. *)
let feature_coverage ?(guided = false) ?(candidates = 4) ~seed ~count () =
  let coverage = Coverage.create () in
  Array.iter
    (fun scenario_seed ->
      let scenario =
        if guided then generate_candidate ~coverage ~candidates scenario_seed
        else Scenario.generate (Rng.create scenario_seed)
      in
      Coverage.note_scenario coverage scenario)
    (scenario_seeds ~seed ~count);
  coverage

module Rng = Softstate_util.Rng
module Json = Softstate_obs.Json
module Trace = Softstate_obs.Trace

type failure = {
  index : int;
  scenario : Scenario.t;
  violations : Oracle.violation list;
  shrunk : Scenario.t;
  shrunk_violations : Oracle.violation list;
  shrink_runs : int;
  flight : Trace.event list;
}

type stats = {
  scenarios : int;
  runs : int;
  failures : failure list;
}

let scenario_seeds ~seed ~count =
  let chain = Rng.create seed in
  Array.init count (fun _ ->
      Int64.to_int (Int64.shift_right_logical (Rng.bits64 chain) 1))

let id x = x

let oracle_battery ?(corrupt = id) names =
  let rerun s = corrupt (Scenario.run s) in
  match Oracle.select ~rerun names with
  | Ok oracles -> (rerun, oracles)
  | Error e -> invalid_arg ("Fuzz: " ^ e)

let check_scenario ?corrupt ?(oracles = []) scenario =
  let rerun, battery = oracle_battery ?corrupt oracles in
  Oracle.check battery (rerun scenario)

let reproducer f =
  let replay =
    Printf.sprintf "softstate_fuzz --replay '%s'"
      (Scenario.to_string f.shrunk)
  in
  match Scenario.to_cli f.shrunk with
  | Some cli -> replay ^ "\n" ^ cli
  | None -> replay

let violations_json vs =
  Json.list
    (List.map
       (fun v ->
         Json.obj
           [ ("oracle", Json.string v.Oracle.oracle);
             ("message", Json.string v.Oracle.message) ])
       vs)

let failure_to_json f =
  Json.obj
    [ ("index", Json.int f.index);
      ("scenario", Json.string (Scenario.to_string f.scenario));
      ("violations", violations_json f.violations);
      ("shrunk", Json.string (Scenario.to_string f.shrunk));
      ("shrunk_violations", violations_json f.shrunk_violations);
      ("shrink_runs", Json.int f.shrink_runs);
      ("reproducer", Json.string (reproducer f));
      (* the shrunk rerun's flight recorder: the last events before
         measurement stopped, each already a JSON object line *)
      ("flight", Json.list (List.map Trace.to_json f.flight)) ]

let run ?corrupt ?(oracles = []) ?(max_shrink = 200) ?log ?on_progress ~seed
    ~count () =
  let rerun, battery = oracle_battery ?corrupt oracles in
  let seeds = scenario_seeds ~seed ~count in
  let runs = ref 0 in
  let failures = ref [] in
  Array.iteri
    (fun index scenario_seed ->
      let scenario = Scenario.generate (Rng.create scenario_seed) in
      incr runs;
      let violations = Oracle.check battery (rerun scenario) in
      (match violations with
      | [] -> ()
      | violations ->
          let fails s =
            incr runs;
            Oracle.check battery (rerun s) <> []
          in
          let shrunk, shrink_runs =
            Shrink.shrink ~fails ~max_runs:max_shrink scenario
          in
          incr runs;
          let shrunk_outcome = rerun shrunk in
          let shrunk_violations = Oracle.check battery shrunk_outcome in
          let failure =
            { index; scenario; violations; shrunk; shrunk_violations;
              shrink_runs; flight = shrunk_outcome.Scenario.flight }
          in
          failures := failure :: !failures;
          Option.iter (fun f -> f (failure_to_json failure ^ "\n")) log);
      Option.iter (fun f -> f index) on_progress)
    seeds;
  { scenarios = count; runs = !runs; failures = List.rev !failures }

(* Offline trace analyzer: lifecycle tables, staleness/latency
   percentiles, NACK-backlog series and fault attribution from a JSONL
   trace (as written by --trace FILE on the simulation front ends).

     dune exec bin/obs_analyze_cli.exe -- run.jsonl
     dune exec bin/obs_analyze_cli.exe -- run.jsonl --keys --bucket 5
     dune exec bin/obs_analyze_cli.exe -- a.jsonl b.jsonl   # A/B diff

   With two traces the report becomes a side-by-side diff of the
   headline quantities — the tool for "did this change make repair
   faster?". *)

open Cmdliner
module Trace = Softstate_obs.Trace
module Lifecycle = Softstate_obs.Lifecycle

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let load path =
  match Lifecycle.of_jsonl path with
  | Ok t -> t
  | Error e -> fail "%s: %s" path e

let fs v =
  if Float.is_nan v then "-" else Printf.sprintf "%.3f" v

let fopt = function None -> "-" | Some v -> Printf.sprintf "%.3f" v

let percentile_row name values =
  (* sketch-backed: bounded memory however long the trace, with an
     explicit rank-error bound in the report *)
  let s = Lifecycle.sketch values in
  let p q = Softstate_util.Sketch.quantile s q in
  Printf.printf "  %-18s %8s %8s %8s %8s  (n=%d, rank err <= %.0f)\n" name
    (fs (p 0.5)) (fs (p 0.9)) (fs (p 0.99)) (fs (p 1.0))
    (Softstate_util.Sketch.count s)
    (ceil (Softstate_util.Sketch.rank_error s))

let print_percentiles t =
  Printf.printf "latency percentiles (s)  %8s %8s %8s %8s\n" "p50" "p90"
    "p99" "max";
  percentile_row "time-to-consistency" (Lifecycle.ttc_values t);
  percentile_row "repair" (Lifecycle.repair_latency_values t)

let print_overview path t =
  let keys = Lifecycle.keys t in
  let stalled = List.length (Lifecycle.stalest t) in
  Printf.printf "%s: %d events, %d keys, horizon %.3f s, %d stalled key%s\n"
    path
    (Array.length (Lifecycle.events t))
    (List.length keys) (Lifecycle.horizon t) stalled
    (if stalled = 1 then "" else "s")

let print_keys t =
  Printf.printf "\n%-24s %5s %5s %5s %5s %5s %5s %9s %9s\n" "key" "ann"
    "ref" "rep" "nack" "qry" "rm" "first_del" "ttc_s";
  List.iter
    (fun (k : Lifecycle.key_stats) ->
      Printf.printf "%-24s %5d %5d %5d %5d %5d %5d %9s %9s\n" k.Lifecycle.key
        k.Lifecycle.announces k.Lifecycle.refreshes k.Lifecycle.repairs
        k.Lifecycle.nacks k.Lifecycle.queries k.Lifecycle.removes
        (fopt k.Lifecycle.first_delivery)
        (fopt k.Lifecycle.time_to_consistency))
    (Lifecycle.keys t)

let print_stalls t ~top =
  match Lifecycle.stalest t with
  | [] -> ()
  | stalled ->
      Printf.printf "\ncritical path of stale keys (worst %d):\n"
        (min top (List.length stalled));
      List.iteri
        (fun i (k : Lifecycle.key_stats) ->
          if i < top then
            List.iter
              (fun (s : Lifecycle.stall) ->
                let dur = Lifecycle.stall_duration t s in
                let culprits =
                  match s.Lifecycle.culprits with
                  | [] -> "no link recorded down"
                  | cs ->
                      String.concat ", "
                        (List.map
                           (fun (c : Lifecycle.culprit) ->
                             Printf.sprintf "link %s down [%.1f s..%s]"
                               c.Lifecycle.link c.Lifecycle.down_at
                               (match c.Lifecycle.up_at with
                               | Some u -> Printf.sprintf "%.1f s" u
                               | None -> "end"))
                           cs)
                in
                Printf.printf
                  "  key %s stale %.3f s: packet %d dropped at %.3f s on %s \
                   (hop %d); %s; %s\n"
                  k.Lifecycle.key dur s.Lifecycle.packet s.Lifecycle.dropped_at
                  s.Lifecycle.drop_src s.Lifecycle.drop_hop culprits
                  (match s.Lifecycle.recovered_at with
                  | Some r -> Printf.sprintf "recovered at %.3f s" r
                  | None -> "never recovered"))
              k.Lifecycle.stalls)
        stalled

let print_series t ~bucket =
  Printf.printf "\nNACK backlog over time (bucket %.1f s):\n" bucket;
  Printf.printf "  %10s %7s %7s %11s\n" "t_start" "nacks" "repairs"
    "outstanding";
  List.iter
    (fun (p : Lifecycle.depth_point) ->
      Printf.printf "  %10.1f %7d %7d %11d\n" p.Lifecycle.bucket_start
        p.Lifecycle.nacks p.Lifecycle.repairs p.Lifecycle.outstanding)
    (Lifecycle.nack_depth_series t ~bucket)

let print_chain t pkt =
  match Lifecycle.chain t pkt with
  | [] -> Printf.printf "\npacket %d: no events\n" pkt
  | evs ->
      Printf.printf "\ncausal chain of packet %d:\n" pkt;
      List.iter
        (fun (ev : Trace.event) ->
          let tag name v =
            if v = Trace.no_id then "" else Printf.sprintf " %s=%d" name v
          in
          Printf.printf "  %10.3f %-16s %-16s %s%s%s%s\n" ev.Trace.time
            ev.Trace.src
            (Trace.kind_to_string ev.Trace.kind)
            ev.Trace.detail (tag "key" ev.Trace.key) (tag "hop" ev.Trace.hop)
            (tag "parent" ev.Trace.parent))
        evs

(* -------------------------------------------------------------- *)
(* A/B diff *)

let diff_line name va vb =
  let delta =
    if Float.is_nan va || Float.is_nan vb then "-"
    else Printf.sprintf "%+.3f" (vb -. va)
  in
  Printf.printf "  %-26s %10s %10s %10s\n" name (fs va) (fs vb) delta

let print_diff (path_a, a) (path_b, b) =
  Printf.printf "\nA/B diff: A=%s B=%s\n" path_a path_b;
  Printf.printf "  %-26s %10s %10s %10s\n" "quantity" "A" "B" "B-A";
  let count f t = float_of_int (f t) in
  let total get t =
    float_of_int
      (List.fold_left (fun acc k -> acc + get k) 0 (Lifecycle.keys t))
  in
  diff_line "events"
    (count (fun t -> Array.length (Lifecycle.events t)) a)
    (count (fun t -> Array.length (Lifecycle.events t)) b);
  diff_line "keys"
    (count (fun t -> List.length (Lifecycle.keys t)) a)
    (count (fun t -> List.length (Lifecycle.keys t)) b);
  diff_line "stalled keys"
    (count (fun t -> List.length (Lifecycle.stalest t)) a)
    (count (fun t -> List.length (Lifecycle.stalest t)) b);
  diff_line "nacks"
    (total (fun k -> k.Lifecycle.nacks) a)
    (total (fun k -> k.Lifecycle.nacks) b);
  diff_line "repairs"
    (total (fun k -> k.Lifecycle.repairs) a)
    (total (fun k -> k.Lifecycle.repairs) b);
  let ttc_a = Lifecycle.sketch (Lifecycle.ttc_values a)
  and ttc_b = Lifecycle.sketch (Lifecycle.ttc_values b)
  and rep_a = Lifecycle.sketch (Lifecycle.repair_latency_values a)
  and rep_b = Lifecycle.sketch (Lifecycle.repair_latency_values b) in
  List.iter
    (fun q ->
      diff_line
        (Printf.sprintf "ttc p%g (s)" (q *. 100.0))
        (Softstate_util.Sketch.quantile ttc_a q)
        (Softstate_util.Sketch.quantile ttc_b q);
      diff_line
        (Printf.sprintf "repair p%g (s)" (q *. 100.0))
        (Softstate_util.Sketch.quantile rep_a q)
        (Softstate_util.Sketch.quantile rep_b q))
    [ 0.5; 0.9; 0.99 ]

(* -------------------------------------------------------------- *)

let run traces keys bucket top chain =
  match traces with
  | [] -> fail "expected a JSONL trace file (see --help)"
  | [ path ] ->
      let t = load path in
      print_overview path t;
      print_percentiles t;
      if keys then print_keys t;
      print_stalls t ~top;
      (match bucket with Some b -> print_series t ~bucket:b | None -> ());
      (match chain with Some p -> print_chain t p | None -> ())
  | [ path_a; path_b ] ->
      let a = load path_a and b = load path_b in
      print_overview path_a a;
      print_overview path_b b;
      print_diff (path_a, a) (path_b, b)
  | _ -> fail "expected one trace (report) or two traces (A/B diff)"

let traces_arg =
  Arg.(
    value & pos_all file []
    & info [] ~docv:"TRACE"
        ~doc:
          "JSONL trace file(s). One: lifecycle report. Two: A/B diff of \
           the headline quantities.")

let keys_arg =
  Arg.(
    value & flag
    & info [ "keys" ] ~doc:"Print the full per-key lifecycle table.")

let bucket_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "bucket" ] ~docv:"SECONDS"
        ~doc:"Print the NACK-backlog-over-time series with this bucket width.")

let top_arg =
  Arg.(
    value & opt int 5
    & info [ "top" ] ~docv:"N"
        ~doc:"How many stale keys to show in the critical-path section.")

let chain_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "chain" ] ~docv:"PACKET"
        ~doc:"Print the causal chain of one packet id.")

let cmd =
  let doc = "analyse a softstate simulation trace" in
  Cmd.v
    (Cmd.info "obs_analyze_cli" ~doc)
    Term.(const run $ traces_arg $ keys_arg $ bucket_arg $ top_arg $ chain_arg)

let () = exit (Cmd.eval cmd)

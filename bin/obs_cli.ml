(* Shared observability plumbing for the command-line front ends:
   --trace FILE streams the structured event trace (JSON lines, or CSV
   when the file name ends in .csv), --metrics FILE writes the
   end-of-run metrics snapshot as JSON, --report FORMAT renders the
   summary as a table or machine JSON instead of the legacy printf
   output. *)

open Cmdliner
module Obs = Softstate_obs.Obs
module Trace = Softstate_obs.Trace
module Metrics = Softstate_obs.Metrics

let trace_arg =
  let doc =
    "Stream the structured event trace to $(docv) as the run executes \
     (one JSON object per line; CSV when the name ends in .csv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc = "Write the end-of-run metrics snapshot to $(docv) as JSON." in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let report_arg =
  let doc = "Render the run summary as $(docv): table or json." in
  Arg.(
    value
    & opt (some (enum [ ("table", `Table); ("json", `Json) ])) None
    & info [ "report" ] ~docv:"FORMAT" ~doc)

type t = {
  obs : Obs.t option;
  report : [ `Table | `Json ] option;
  finish : now:float -> unit;
      (* write the metrics file and close the trace stream *)
}

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let open_file file =
  try open_out file
  with Sys_error msg ->
    Printf.eprintf "cannot write %s\n" msg;
    exit 1

let setup ~trace_file ~metrics_file ~report =
  if trace_file = None && metrics_file = None && report = None then
    { obs = None; report = None; finish = (fun ~now:_ -> ()) }
  else begin
    let closers = ref [] in
    let trace =
      match trace_file with
      | None -> Trace.null
      | Some file ->
          let oc = open_file file in
          closers := (fun () -> close_out oc) :: !closers;
          let write s = output_string oc s in
          if ends_with ~suffix:".csv" file then Trace.csv_writer write
          else Trace.jsonl_writer write
    in
    let obs = Obs.create ~trace () in
    let finish ~now =
      (match metrics_file with
      | None -> ()
      | Some file ->
          let oc = open_file file in
          output_string oc (Metrics.to_json (Obs.metrics obs) ~now);
          output_char oc '\n';
          close_out oc);
      List.iter (fun close -> close ()) !closers
    in
    { obs = Some obs; report; finish }
  end

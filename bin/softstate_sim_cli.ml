(* Command-line front end to the announce/listen simulator: run one
   experiment with everything configurable, print the consistency
   profile quantities.

     dune exec bin/softstate_sim_cli.exe -- --protocol feedback \
       --loss 0.4 --mu-hot 27 --mu-cold 7 --mu-fb 11 --duration 5000 *)

open Cmdliner

module E = Softstate_core.Experiment
module Base = Softstate_core.Base
module Consistency = Softstate_core.Consistency
module Sched = Softstate_sched.Scheduler

let protocol_arg =
  let doc =
    "Protocol variant: open-loop, two-queue, feedback, multicast, or \
     gossip (epidemic dissemination over the flat substrate; see the \
     --gossip-* options and --fluid)."
  in
  Arg.(
    value
    & opt (enum [ ("open-loop", `Open_loop); ("two-queue", `Two_queue);
                  ("feedback", `Feedback); ("multicast", `Multicast);
                  ("gossip", `Gossip) ])
        `Open_loop
    & info [ "protocol"; "p" ] ~doc)

let float_arg names default doc =
  Arg.(value & opt float default & info names ~doc)

let int_arg names default doc =
  Arg.(value & opt int default & info names ~doc)

let seed_arg = int_arg [ "seed" ] 1 "PRNG seed; equal seeds reproduce runs."
let duration_arg = float_arg [ "duration"; "d" ] 5000.0 "Simulated seconds."
let lambda_arg = float_arg [ "lambda" ] 15.0 "Table update rate, kb/s."
let size_arg = int_arg [ "size-bits" ] 1000 "Announcement size, bits."
let loss_arg =
  let doc =
    "Channel loss process: a bare probability P (Bernoulli), or \
     ge:PGB:PBG:LG:LB for a Gilbert-Elliott chain with good-to-bad / \
     bad-to-good transition probabilities and per-state loss rates."
  in
  let parse s =
    match float_of_string_opt s with
    | Some p -> Ok (E.Bernoulli p)
    | None -> (
        match String.split_on_char ':' s with
        | [ "ge"; a; b; c; d ] -> (
            match
              ( float_of_string_opt a, float_of_string_opt b,
                float_of_string_opt c, float_of_string_opt d )
            with
            | Some p_good_to_bad, Some p_bad_to_good, Some loss_good,
              Some loss_bad ->
                Ok
                  (E.Gilbert_elliott
                     { p_good_to_bad; p_bad_to_good; loss_good; loss_bad })
            | _ -> Error (`Msg ("bad gilbert-elliott numbers in " ^ s)))
        | _ -> Error (`Msg "expected a probability or ge:PGB:PBG:LG:LB"))
  in
  let print fmt = function
    | E.Bernoulli p -> Format.fprintf fmt "%g" p
    | E.Gilbert_elliott { p_good_to_bad; p_bad_to_good; loss_good; loss_bad }
      ->
        Format.fprintf fmt "ge:%g:%g:%g:%g" p_good_to_bad p_bad_to_good
          loss_good loss_bad
  in
  Arg.(
    value
    & opt (conv (parse, print)) (E.Bernoulli 0.1)
    & info [ "loss"; "l" ] ~doc)

let update_fraction_arg =
  float_arg [ "update-fraction" ] 0.0
    "Fraction of arrivals that update an existing record instead of \
     creating a new one."
let mu_data_arg = float_arg [ "mu-data" ] 45.0 "Open-loop data rate, kb/s."
let mu_hot_arg = float_arg [ "mu-hot" ] 20.0 "Hot queue rate, kb/s."
let mu_cold_arg = float_arg [ "mu-cold" ] 25.0 "Cold queue rate, kb/s."
let mu_fb_arg = float_arg [ "mu-fb" ] 7.0 "Feedback channel rate, kb/s."
let nack_arg = int_arg [ "nack-bits" ] 500 "NACK packet size, bits."

let receivers_arg =
  int_arg [ "receivers" ] 8 "Multicast group size (multicast protocol only)."

let topology_arg =
  let doc =
    "Run over a multi-hop topology instead of a direct link: star:LEAVES, \
     chain:HOPS, tree:ARITY[:DEPTH] (depth defaults to 3) or \
     random:NODES:EDGE_PROB. Every edge gets the protocol's data rate and \
     its own instance of the loss process; the protocol itself then runs \
     lossless."
  in
  let parse s =
    let num f x = Option.to_result ~none:(`Msg ("bad number " ^ x)) (f x) in
    match String.split_on_char ':' s with
    | [ "single-hop" ] -> Ok E.Single_hop
    | [ "star"; n ] ->
        Result.map (fun leaves -> E.Star { leaves }) (num int_of_string_opt n)
    | [ "chain"; n ] ->
        Result.map (fun hops -> E.Chain { hops }) (num int_of_string_opt n)
    | [ "tree"; k ] ->
        Result.map
          (fun arity -> E.Kary_tree { arity; depth = 3 })
          (num int_of_string_opt k)
    | [ "tree"; k; d ] ->
        Result.bind (num int_of_string_opt k) (fun arity ->
            Result.map
              (fun depth -> E.Kary_tree { arity; depth })
              (num int_of_string_opt d))
    | [ "random"; n; p ] ->
        Result.bind (num int_of_string_opt n) (fun nodes ->
            Result.map
              (fun edge_prob -> E.Random_graph { nodes; edge_prob })
              (num float_of_string_opt p))
    | _ ->
        Error
          (`Msg
             "expected star:LEAVES, chain:HOPS, tree:ARITY[:DEPTH] or \
              random:NODES:EDGE_PROB")
  in
  let print fmt = function
    | E.Single_hop -> Format.fprintf fmt "single-hop"
    | E.Star { leaves } -> Format.fprintf fmt "star:%d" leaves
    | E.Chain { hops } -> Format.fprintf fmt "chain:%d" hops
    | E.Kary_tree { arity; depth } -> Format.fprintf fmt "tree:%d:%d" arity depth
    | E.Random_graph { nodes; edge_prob } ->
        Format.fprintf fmt "random:%d:%g" nodes edge_prob
  in
  Arg.(
    value
    & opt (conv (parse, print)) E.Single_hop
    & info [ "topology" ] ~doc)

let faults_arg =
  let doc =
    "Comma-separated fault schedule over the topology (requires \
     --topology): cable:I@T1-T2, node:I@T1-T2, partition@T1-T2, \
     flap:RATE:MEAN or churn:RATE:MEAN."
  in
  let parse s =
    Result.map_error
      (fun e -> `Msg e)
      (Softstate_net.Fault.specs_of_string s)
  in
  let print fmt specs =
    Format.fprintf fmt "%s"
      (String.concat "," (List.map Softstate_net.Fault.spec_to_string specs))
  in
  Arg.(value & opt (conv (parse, print)) [] & info [ "faults" ] ~doc)

let death_arg =
  let doc =
    "Death model: service:P (per-service probability), fixed:TTL or \
     exp:MEAN (lifetimes in seconds)."
  in
  let parse s =
    match String.split_on_char ':' s with
    | [ "service"; p ] -> (
        match float_of_string_opt p with
        | Some p -> Ok (Base.Per_service p)
        | None -> Error (`Msg "bad probability"))
    | [ "fixed"; ttl ] -> (
        match float_of_string_opt ttl with
        | Some ttl -> Ok (Base.Lifetime_fixed ttl)
        | None -> Error (`Msg "bad lifetime"))
    | [ "exp"; mean ] -> (
        match float_of_string_opt mean with
        | Some mean -> Ok (Base.Lifetime_exp mean)
        | None -> Error (`Msg "bad mean"))
    | _ -> Error (`Msg "expected service:P, fixed:TTL or exp:MEAN")
  in
  let print fmt = function
    | Base.Per_service p -> Format.fprintf fmt "service:%g" p
    | Base.Lifetime_fixed ttl -> Format.fprintf fmt "fixed:%g" ttl
    | Base.Lifetime_exp mean -> Format.fprintf fmt "exp:%g" mean
  in
  Arg.(
    value
    & opt (conv (parse, print)) (Base.Lifetime_fixed 30.0)
    & info [ "death" ] ~doc)

let expiry_arg =
  let doc =
    "Receiver-side soft-state expiry: none, refresh:M:P (periodic sweep \
     every P seconds, timeout M estimated refresh intervals) or wheel:M \
     (per-key timing-wheel timers, same timeout rule)."
  in
  let parse s =
    match Base.expiry_of_string s with
    | Ok e -> Ok e
    | Error msg -> Error (`Msg msg)
  in
  let print fmt e = Format.pp_print_string fmt (Base.expiry_to_string e) in
  Arg.(
    value & opt (conv (parse, print)) Base.No_expiry & info [ "expiry" ] ~doc)

let arrival_arg =
  let doc =
    "Arrival-process shape: poisson (default) or \
     flash:MULT:PERIOD:DWELL:S — bursts at MULT times the mean rate \
     for DWELL seconds out of every PERIOD, with update targets \
     Zipf(S)-skewed over the live table (S = 0 keeps them uniform)."
  in
  let parse s =
    match Softstate_core.Workload.shape_of_string s with
    | Some shape -> Ok shape
    | None -> Error (`Msg "expected poisson or flash:MULT:PERIOD:DWELL:S")
  in
  let print fmt shape =
    Format.pp_print_string fmt (Softstate_core.Workload.shape_to_string shape)
  in
  Arg.(
    value
    & opt (conv (parse, print)) Softstate_core.Workload.Poisson
    & info [ "arrival" ] ~doc)

let sched_arg =
  let doc = "Proportional-share scheduler for the hot/cold split." in
  Arg.(
    value
    & opt
        (enum
           (List.map (fun a -> (Sched.algorithm_name a, a)) Sched.all_algorithms))
        Sched.Stride
    & info [ "sched" ] ~doc)

(* gossip-only knobs *)

let gossip_mode_arg =
  let doc = "Gossip round discipline: push or push-pull." in
  Arg.(
    value
    & opt
        (enum
           [ ("push", Softstate_core.Gossip.Push);
             ("push-pull", Softstate_core.Gossip.Push_pull) ])
        Softstate_core.Gossip.Push
    & info [ "gossip-mode" ] ~doc)

let fanout_arg =
  int_arg [ "fanout" ] 1 "Contacts per infected node per gossip round."

let rounds_arg = int_arg [ "rounds" ] 64 "Gossip round budget."

let round_period_arg =
  float_arg [ "round-period" ] 1.0 "Simulated seconds per gossip round."

let initial_arg =
  int_arg [ "initial" ] 1 "Initially infected nodes (gossip only)."

let target_arg =
  float_arg [ "target" ] 1.0
    "Stop gossip once this infected fraction is reached."

let nodes_arg =
  int_arg [ "nodes"; "n" ] 1000
    "Gossip population under uniform mixing (ignored when --topology \
     selects a mesh, whose node count then governs)."

let fluid_arg =
  let doc =
    "Also integrate the mean-field fluid model and print the per-round \
     sim-vs-fluid infected fractions with the maximum gap (gossip only; \
     exact for uniform mixing, an approximation over meshes)."
  in
  Arg.(value & flag & info [ "fluid" ] ~doc)

let replications_arg =
  int_arg [ "replications"; "r" ]
    1
    "Independent replications (seeds derived from --seed); with more \
     than one, the summary reports means and confidence intervals and \
     the obs flags are ignored."

let jobs_arg =
  int_arg [ "jobs"; "j" ]
    1
    "Domains to fan replications across (0 = all recommended). The \
     summary is identical for every job count."

(* The gossip protocol has its own result shape (infection counts and a
   round series rather than a consistency profile), so it branches off
   before any announce/listen configuration is assembled. *)
let run_gossip seed topology loss gossip_mode fanout rounds round_period
    initial target nodes fluid trace_file metrics_file report =
  let module G = Softstate_core.Gossip in
  let config =
    { E.g_seed = seed; g_topology = topology; g_nodes = nodes;
      g_mode = gossip_mode; g_fanout = fanout; g_loss = E.loss_mean loss;
      g_round_period = round_period; g_max_rounds = rounds;
      g_initial = initial; g_target = target }
  in
  let obs = Obs_cli.setup ~trace_file ~metrics_file ~report in
  let r = E.run_gossip ?obs:obs.Obs_cli.obs config in
  let horizon = match r.G.series with [||] -> 0.0 | s -> fst s.(Array.length s - 1) in
  obs.Obs_cli.finish ~now:horizon;
  (match obs.Obs_cli.report with
  | Some format ->
      print_string
        (Softstate_obs.Report.render format
           (E.gossip_report ?obs:obs.Obs_cli.obs ~config r));
      print_newline ()
  | None ->
      let n = float_of_int r.G.nodes in
      Printf.printf "gossip                %s fanout %d over %s\n"
        (G.mode_name config.E.g_mode) fanout
        (E.gossip_topology_name config);
      Printf.printf "rounds                %d\n" r.G.rounds;
      Printf.printf "infected              %d / %d (%.4f)\n" r.G.infected
        r.G.nodes
        (float_of_int r.G.infected /. n);
      Printf.printf
        "transmissions         %d (%d delivered, %d redundant, %d lost)\n"
        r.G.transmissions r.G.deliveries r.G.redundant r.G.lost;
      if r.G.misses > 0 || r.G.blackholed > 0 then
        Printf.printf "dead contacts         %d missed, %d blackholed\n"
          r.G.misses r.G.blackholed;
      let half = E.gossip_time_to r 0.5 in
      if Float.is_finite half then
        Printf.printf "time to half          %.3f s\n" half;
      Printf.printf "digest                %s\n" r.G.digest);
  if fluid then begin
    let fl = E.fluid_gossip ~rounds:r.G.rounds config in
    let gap = ref 0.0 in
    Printf.printf "\n%-6s %10s %10s\n" "round" "sim" "fluid";
    Array.iteri
      (fun i (_, c) ->
        let f = snd fl.(i) in
        gap := Float.max !gap (Float.abs (c -. f));
        Printf.printf "%-6d %10.4f %10.4f\n" i c f)
      r.G.series;
    Printf.printf "max |sim - fluid|     %.4f\n" !gap
  end

let run protocol seed duration lambda size_bits loss update_fraction arrival
    mu_data mu_hot mu_cold mu_fb nack_bits receivers topology faults death
    expiry sched gossip_mode fanout rounds round_period initial target nodes
    fluid replications jobs trace_file metrics_file report =
  match protocol with
  | `Gossip ->
      run_gossip seed topology loss gossip_mode fanout rounds round_period
        initial target nodes fluid trace_file metrics_file report
  | (`Open_loop | `Two_queue | `Feedback | `Multicast) as protocol ->
  let protocol =
    match protocol with
    | `Open_loop -> E.Open_loop { mu_data_kbps = mu_data }
    | `Two_queue -> E.Two_queue { mu_hot_kbps = mu_hot; mu_cold_kbps = mu_cold }
    | `Feedback ->
        E.Feedback
          { mu_hot_kbps = mu_hot; mu_cold_kbps = mu_cold; mu_fb_kbps = mu_fb;
            nack_bits; fb_lossy = false }
    | `Multicast ->
        E.Multicast
          { receivers; mu_hot_kbps = mu_hot; mu_cold_kbps = mu_cold;
            mu_fb_kbps = mu_fb; nack_bits; suppression = true;
            nack_slot = 0.5 }
  in
  let obs = Obs_cli.setup ~trace_file ~metrics_file ~report in
  let config =
    { E.seed; duration; lambda_kbps = lambda; size_bits; death;
      expiry;
      update_fraction; arrival; loss; protocol;
      topology; faults; sched;
      empty_policy = Consistency.Empty_is_consistent; record_series = false;
      obs = obs.Obs_cli.obs }
  in
  if replications > 1 then begin
    let s, _ = E.run_many ~jobs ~replications config in
    match obs.Obs_cli.report with
    | Some format ->
        print_string
          (Softstate_obs.Report.render format (E.summary_report ~config s));
        print_newline ()
    | None ->
        Printf.printf "replications          %d (jobs %d)\n" s.E.replications
          jobs;
        Printf.printf "average consistency   %.4f +/- %.4f\n"
          s.E.consistency_mean s.E.consistency_ci95;
        Printf.printf "final consistency     %.4f\n"
          s.E.final_consistency_mean;
        Printf.printf "receive latency       %.3f s (+/- %.3f, n=%d)\n"
          s.E.latency_mean s.E.latency_ci95 s.E.deliveries;
        Printf.printf "transmissions         %d (redundant fraction %.3f)\n"
          s.E.transmissions s.E.redundant_fraction_mean;
        if s.E.sent_hot + s.E.sent_cold > 0 then
          Printf.printf "hot/cold sends        %d / %d\n" s.E.sent_hot
            s.E.sent_cold;
        if s.E.nacks_sent > 0 then
          Printf.printf "nacks                 %d sent, %d delivered, %d reheats\n"
            s.E.nacks_sent s.E.nacks_delivered s.E.reheats;
        Printf.printf "link utilisation      %.3f\n" s.E.utilisation_mean
  end
  else
  let r = E.run config in
  obs.Obs_cli.finish ~now:duration;
  match obs.Obs_cli.report with
  | Some format ->
      print_string
        (Softstate_obs.Report.render format
           (E.report ?obs:obs.Obs_cli.obs ~config r));
      print_newline ()
  | None ->
      Printf.printf "average consistency   %.4f\n" r.E.avg_consistency;
      Printf.printf "final consistency     %.4f\n" r.E.final_consistency;
      Printf.printf "receive latency       %.3f s (+/- %.3f, n=%d)\n"
        r.E.latency_mean r.E.latency_ci95 r.E.deliveries;
      Printf.printf "transmissions         %d (redundant fraction %.3f)\n"
        r.E.transmissions r.E.redundant_fraction;
      if r.E.sent_hot + r.E.sent_cold > 0 then
        Printf.printf "hot/cold sends        %d / %d\n" r.E.sent_hot
          r.E.sent_cold;
      if r.E.nacks_sent > 0 then
        Printf.printf
          "nacks                 %d sent, %d delivered, %d overflowed, %d reheats\n"
          r.E.nacks_sent r.E.nacks_delivered r.E.nack_overflows r.E.reheats;
      Printf.printf "link utilisation      %.3f\n" r.E.utilisation;
      if r.E.fault_transitions > 0 || r.E.fault_drops > 0 then
        Printf.printf "faults                %d transitions, %d packets dropped\n"
          r.E.fault_transitions r.E.fault_drops;
      Printf.printf "live records at end   %d\n" r.E.live_at_end

let cmd =
  let doc = "simulate one soft-state announce/listen experiment" in
  let info = Cmd.info "softstate-sim" ~doc in
  Cmd.v info
    Term.(
      const run $ protocol_arg $ seed_arg $ duration_arg $ lambda_arg
      $ size_arg $ loss_arg $ update_fraction_arg $ arrival_arg $ mu_data_arg
      $ mu_hot_arg $ mu_cold_arg
      $ mu_fb_arg $ nack_arg $ receivers_arg $ topology_arg $ faults_arg
      $ death_arg $ expiry_arg $ sched_arg $ gossip_mode_arg $ fanout_arg
      $ rounds_arg
      $ round_period_arg $ initial_arg $ target_arg $ nodes_arg $ fluid_arg
      $ replications_arg
      $ jobs_arg $ Obs_cli.trace_arg $ Obs_cli.metrics_arg
      $ Obs_cli.report_arg)

let () = exit (Cmd.eval cmd)

(* Determinism lint front end.

     dune exec bin/lint_cli.exe -- lib bin bench test
     dune exec bin/lint_cli.exe -- --format json lib
     dune exec bin/lint_cli.exe -- --explain D003

   Exits 0 when clean, 1 on findings, 2 on usage errors. *)

open Cmdliner
module Lint = Softstate_lint

let paths_arg =
  Arg.(
    value
    & pos_all string [ "lib"; "bin"; "bench"; "test" ]
    & info [] ~docv:"PATH"
        ~doc:
          "Files or directories to lint (default: lib bin bench test, \
           relative to the repository root).")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", Lint.Driver.Text); ("json", Lint.Driver.Json) ])
        Lint.Driver.Text
    & info [ "format" ] ~docv:"FMT"
        ~doc:"Report format: $(b,text) or $(b,json) (one object per line).")

let explain_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "explain" ] ~docv:"RULE"
        ~doc:"Print the documentation for $(docv) and exit.")

let explain rule =
  match Lint.Rules.find rule with
  | Some r ->
      Printf.printf "%s — %s\n\n%s\n\nfix: %s\n" r.Lint.Rules.id
        r.Lint.Rules.title r.Lint.Rules.explain r.Lint.Rules.hint;
      0
  | None ->
      Printf.eprintf "unknown rule %s; known: %s\n" rule
        (String.concat ", "
           (List.map (fun r -> r.Lint.Rules.id) Lint.Rules.all));
      2

let run paths format = function
  | Some rule -> explain rule
  | None -> (
      match List.filter (fun p -> not (Sys.file_exists p)) paths with
      | _ :: _ as missing ->
          Printf.eprintf "no such path: %s\n" (String.concat ", " missing);
          2
      | [] ->
          let findings = Lint.Driver.scan_paths paths in
          List.iter print_endline (Lint.Driver.render format findings);
          let n = List.length findings in
          if n = 0 then begin
            Printf.eprintf "lint: clean (%d files)\n"
              (List.length (Lint.Driver.collect paths));
            0
          end
          else begin
            Printf.eprintf "lint: %d finding%s\n" n
              (if n = 1 then "" else "s");
            1
          end)

let cmd =
  let doc = "statically enforce the repository's determinism invariants" in
  let info = Cmd.info "softstate-lint" ~doc in
  Cmd.v info Term.(const run $ paths_arg $ format_arg $ explain_arg)

let () = exit (Cmd.eval' cmd)

(* Determinism + domain-safety lint front end.

     dune exec bin/lint_cli.exe -- lib bin bench test
     dune exec bin/lint_cli.exe -- --format json lib
     dune exec bin/lint_cli.exe -- --rules R,A lib bin
     dune exec bin/lint_cli.exe -- --summary-out lint_summary.tsv lib
     dune exec bin/lint_cli.exe -- --baseline lint_baseline.tsv --update-baseline lib
     dune exec bin/lint_cli.exe -- --explain R001

   Exits 0 when clean (or when every finding is covered by the
   baseline), 1 on findings, 2 on usage errors. *)

open Cmdliner
module Lint = Softstate_lint

let paths_arg =
  Arg.(
    value
    & pos_all string [ "lib"; "bin"; "bench"; "test" ]
    & info [] ~docv:"PATH"
        ~doc:
          "Files or directories to lint (default: lib bin bench test, \
           relative to the repository root).")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", Lint.Driver.Text); ("json", Lint.Driver.Json) ])
        Lint.Driver.Text
    & info [ "format" ] ~docv:"FMT"
        ~doc:"Report format: $(b,text) or $(b,json) (one object per line).")

let explain_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "explain" ] ~docv:"RULE"
        ~doc:"Print the documentation for $(docv) and exit.")

let rules_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "rules" ] ~docv:"RULES"
        ~doc:
          "Comma-separated rule selection: exact ids ($(b,R001)) or \
           single-letter families ($(b,R,A)). S001/E001 are always \
           checked. Default: all rules.")

let summary_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "summary-out" ] ~docv:"FILE"
        ~doc:
          "Write the phase-1 whole-program summary (per-unit mutable \
           state, call graph edges, spawn sites, hot marks) to $(docv).")

let baseline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "baseline" ] ~docv:"FILE"
        ~doc:
          "Compare findings against the snapshot in $(docv) and fail only \
           on new ones. Keys are (file, rule, message), line-insensitive.")

let update_baseline_arg =
  Arg.(
    value & flag
    & info [ "update-baseline" ]
        ~doc:
          "Rewrite the $(b,--baseline) file from the current findings and \
           exit 0.")

let explain rule =
  match Lint.Rules.find rule with
  | Some r ->
      Printf.printf "%s — %s\n\n%s\n\nfix: %s\n" r.Lint.Rules.id
        r.Lint.Rules.title r.Lint.Rules.explain r.Lint.Rules.hint;
      0
  | None ->
      Printf.eprintf "unknown rule %s; known: %s\n" rule
        (String.concat ", "
           (List.map (fun r -> r.Lint.Rules.id) Lint.Rules.all));
      2

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Baseline snapshot: one finding per line, rule<TAB>file<TAB>message —
   exactly the fields of Driver.baseline_key, so the file is greppable
   and diffs stay meaningful. *)
let baseline_to_string findings =
  String.concat ""
    (List.map
       (fun (f : Lint.Finding.t) ->
         Printf.sprintf "%s\t%s\t%s\n" f.Lint.Finding.rule f.Lint.Finding.file
           f.Lint.Finding.message)
       findings)

let baseline_of_string text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         if line = "" then None
         else
           match String.split_on_char '\t' line with
           | rule :: file :: rest ->
               Some
                 (Lint.Finding.v ~file ~line:0 ~col:0 ~rule
                    (String.concat "\t" rest))
           | _ -> None)

let parse_rules spec =
  String.split_on_char ',' spec
  |> List.map String.trim
  |> List.filter (fun t -> t <> "")
  |> List.map String.uppercase_ascii

let run paths format rules summary_out baseline update_baseline = function
  | Some rule -> explain rule
  | None -> (
      match List.filter (fun p -> not (Sys.file_exists p)) paths with
      | _ :: _ as missing ->
          Printf.eprintf "no such path: %s\n" (String.concat ", " missing);
          2
      | [] -> (
          let rules = Option.map parse_rules rules in
          let a = Lint.Driver.analyze_paths ?rules paths in
          (match summary_out with
          | Some f -> write_file f (Lint.Summary.to_string a.summaries)
          | None -> ());
          let findings = a.Lint.Driver.findings in
          let nfiles = List.length (Lint.Driver.collect paths) in
          let report fs =
            List.iter print_endline (Lint.Driver.render format fs)
          in
          match (baseline, update_baseline) with
          | None, true ->
              Printf.eprintf "--update-baseline requires --baseline FILE\n";
              2
          | Some bf, true ->
              write_file bf (baseline_to_string findings);
              Printf.eprintf "lint: baseline %s updated (%d finding%s)\n" bf
                (List.length findings)
                (if List.length findings = 1 then "" else "s");
              0
          | Some bf, false -> (
              match read_file bf with
              | exception Sys_error e ->
                  Printf.eprintf "cannot read baseline: %s\n" e;
                  2
              | text ->
                  let base = baseline_of_string text in
                  let fresh, matched =
                    Lint.Driver.apply_baseline ~baseline:base findings
                  in
                  report fresh;
                  if fresh = [] then begin
                    Printf.eprintf
                      "lint: clean (%d files, %d baselined finding%s)\n"
                      nfiles matched
                      (if matched = 1 then "" else "s");
                    0
                  end
                  else begin
                    Printf.eprintf
                      "lint: %d new finding%s (%d baselined)\n"
                      (List.length fresh)
                      (if List.length fresh = 1 then "" else "s")
                      matched;
                    1
                  end)
          | None, false ->
              report findings;
              let n = List.length findings in
              if n = 0 then begin
                Printf.eprintf "lint: clean (%d files)\n" nfiles;
                0
              end
              else begin
                Printf.eprintf "lint: %d finding%s\n" n
                  (if n = 1 then "" else "s");
                1
              end))

let cmd =
  let doc =
    "statically enforce the repository's determinism and domain-safety \
     invariants"
  in
  let info = Cmd.info "softstate-lint" ~doc in
  Cmd.v info
    Term.(
      const run $ paths_arg $ format_arg $ rules_arg $ summary_out_arg
      $ baseline_arg $ update_baseline_arg $ explain_arg)

let () = exit (Cmd.eval' cmd)

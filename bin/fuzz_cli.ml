(* Scenario fuzzer front end: generate seeded random end-to-end
   simulations, check the invariant oracles, shrink any failure to a
   minimal reproducer.

     dune exec bin/fuzz_cli.exe -- --seed 1 --count 200
     dune exec bin/fuzz_cli.exe -- --replay 'core seed=7 dur=50 ...'

   Exits non-zero iff any oracle reported a violation. *)

open Cmdliner

module Check = Softstate_check
module Scenario = Check.Scenario
module Oracle = Check.Oracle
module Fuzz = Check.Fuzz
module Experiment = Softstate_core.Experiment

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~doc:"Fuzzer seed; fixes the whole scenario sequence.")

let count_arg =
  Arg.(
    value & opt int 200 & info [ "count"; "n" ] ~doc:"Scenarios to generate.")

let max_shrink_arg =
  Arg.(
    value & opt int 200
    & info [ "max-shrink" ]
        ~doc:"Candidate executions the shrinker may spend per failure.")

let oracle_arg =
  let doc =
    Printf.sprintf
      "Comma-separated oracles to run (default: all). Available: %s."
      (String.concat ", " Oracle.names)
  in
  Arg.(value & opt string "" & info [ "oracle" ] ~doc)

let log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log" ] ~docv:"FILE"
        ~doc:"Append one JSON line per failure to $(docv).")

let replay_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"SCENARIO"
        ~doc:
          "Run a single scenario given in Scenario.to_string form (as \
           printed in reproducers) instead of fuzzing.")

let inject_bug_arg =
  Arg.(
    value & flag
    & info [ "inject-bug" ]
        ~doc:
          "Mutation smoke test: corrupt every outcome's delivered-packet \
           counter before the oracles see it (the conservation oracle must \
           catch and shrink it), and plant a Random.self_init call in a \
           scratch copy of a source file (the determinism lint must catch \
           it). The run still exits non-zero; exit 3 means a smoke check \
           itself failed.")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ] ~doc:"Print a dot per scenario to stderr.")

(* The planted bug: claim a few more deliveries than were sent, the
   exact class of accounting error the conservation oracle exists to
   catch. *)
let corrupt_delivered outcome =
  match outcome.Scenario.payload with
  | Scenario.Core_result r ->
      { outcome with
        Scenario.payload =
          Scenario.Core_result
            { r with
              Experiment.packets_delivered =
                r.Experiment.packets_delivered + 100 } }
  | Scenario.Gossip_result r ->
      { outcome with
        Scenario.payload =
          Scenario.Gossip_result
            { r with
              Softstate_core.Gossip.deliveries =
                r.Softstate_core.Gossip.deliveries + 100 } }
  | Scenario.Sstp_result _ -> outcome

let parse_oracles s =
  if s = "" then []
  else List.filter (fun x -> x <> "") (String.split_on_char ',' s)

(* ------------------------------------------------------------------ *)
(* Lint mutation smoke: the same guard for the static pass that the
   corrupted counters are for the oracles. Plant an unseeded-RNG call
   in a scratch copy of a real source file; if the determinism lint
   does not report D001 at the planted line, the pass has rotted. *)

module Lint = Softstate_lint

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_smoke () =
  let base =
    let candidate = Filename.concat "lib" (Filename.concat "util" "ewma.ml") in
    if Sys.file_exists candidate then read_file candidate
    else "let tick x = x + 1\n"
  in
  let base = if String.length base > 0 && base.[String.length base - 1] = '\n'
    then base else base ^ "\n" in
  let planted_line =
    1 + String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 base
  in
  let planted = base ^ "let () = Random.self_init ()\n" in
  let scratch = Filename.temp_file "lint_smoke" ".ml" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove scratch with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin scratch in
      output_string oc planted;
      close_out oc;
      let clean = Lint.Driver.scan_source ~file:"lib/scratch/smoke.ml" base in
      let findings = Lint.Driver.scan_paths [ scratch ] in
      let caught =
        List.exists
          (fun f ->
            f.Lint.Finding.rule = "D001"
            && f.Lint.Finding.line = planted_line)
          findings
      in
      let cli_caught =
        (* The built lint_cli.exe sits next to this executable; assert
           the user-facing entry point also exits non-zero on it. *)
        let exe =
          Filename.concat (Filename.dirname Sys.executable_name)
            "lint_cli.exe"
        in
        if Sys.file_exists exe then
          Sys.command
            (Printf.sprintf "%s %s >/dev/null 2>&1" (Filename.quote exe)
               (Filename.quote scratch))
          <> 0
        else true
      in
      if clean <> [] then begin
        Printf.eprintf
          "lint-smoke: FAILED — unplanted copy already has findings\n";
        false
      end
      else if not caught then begin
        Printf.eprintf
          "lint-smoke: FAILED — planted Random.self_init at line %d not \
           reported\n"
          planted_line;
        false
      end
      else if not cli_caught then begin
        Printf.eprintf "lint-smoke: FAILED — lint_cli.exe exited 0\n";
        false
      end
      else begin
        Printf.printf
          "lint-smoke: planted Random.self_init caught at line %d\n"
          planted_line;
        true
      end)

let run seed count max_shrink oracle log replay inject_bug progress =
  let oracles = parse_oracles oracle in
  let corrupt = if inject_bug then Some corrupt_delivered else None in
  if inject_bug && not (lint_smoke ()) then 3
  else
  match replay with
  | Some spec -> (
      match Scenario.of_string spec with
      | Error e ->
          Printf.eprintf "bad scenario: %s\n" e;
          2
      | Ok scenario -> (
          match Fuzz.check_scenario ?corrupt ~oracles scenario with
          | [] ->
              print_endline "ok: all oracles passed";
              0
          | vs ->
              List.iter
                (fun v ->
                  Printf.printf "%-12s %s\n" v.Oracle.oracle v.Oracle.message)
                vs;
              1))
  | None ->
      let log_chan = Option.map open_out log in
      let log_fn =
        Option.map
          (fun oc line ->
            output_string oc line;
            flush oc)
          log_chan
      in
      let on_progress =
        if progress then
          Some
            (fun i ->
              prerr_char '.';
              if (i + 1) mod 50 = 0 then Printf.eprintf " %d\n" (i + 1);
              flush stderr)
        else None
      in
      let stats =
        Fuzz.run ?corrupt ~oracles ~max_shrink ?log:log_fn ?on_progress ~seed
          ~count ()
      in
      Option.iter close_out log_chan;
      Printf.printf "%d scenarios, %d runs, %d failures\n"
        stats.Fuzz.scenarios stats.Fuzz.runs
        (List.length stats.Fuzz.failures);
      List.iter
        (fun f ->
          Printf.printf "\nscenario %d failed:\n" f.Fuzz.index;
          List.iter
            (fun v ->
              Printf.printf "  %-12s %s\n" v.Oracle.oracle v.Oracle.message)
            f.Fuzz.violations;
          Printf.printf "  shrunk (%d runs): %s\n" f.Fuzz.shrink_runs
            (Scenario.to_string f.Fuzz.shrunk);
          Printf.printf "  reproduce with:\n";
          String.split_on_char '\n' (Fuzz.reproducer f)
          |> List.iter (Printf.printf "    %s\n"))
        stats.Fuzz.failures;
      if stats.Fuzz.failures = [] then 0 else 1

let cmd =
  let doc = "fuzz the soft-state simulator with invariant oracles" in
  let info = Cmd.info "softstate-fuzz" ~doc in
  Cmd.v info
    Term.(
      const run $ seed_arg $ count_arg $ max_shrink_arg $ oracle_arg
      $ log_arg $ replay_arg $ inject_bug_arg $ progress_arg)

let () = exit (Cmd.eval' cmd)

(* Scenario fuzzer front end: generate seeded random end-to-end
   simulations, check the invariant oracles, shrink any failure to a
   minimal reproducer.

     dune exec bin/fuzz_cli.exe -- --seed 1 --count 200
     dune exec bin/fuzz_cli.exe -- --replay 'core seed=7 dur=50 ...'

   Exits non-zero iff any oracle reported a violation. *)

open Cmdliner

module Check = Softstate_check
module Scenario = Check.Scenario
module Oracle = Check.Oracle
module Fuzz = Check.Fuzz
module Experiment = Softstate_core.Experiment

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~doc:"Fuzzer seed; fixes the whole scenario sequence.")

let count_arg =
  Arg.(
    value & opt int 200 & info [ "count"; "n" ] ~doc:"Scenarios to generate.")

let max_shrink_arg =
  Arg.(
    value & opt int 200
    & info [ "max-shrink" ]
        ~doc:"Candidate executions the shrinker may spend per failure.")

let oracle_arg =
  let doc =
    Printf.sprintf
      "Comma-separated oracles to run (default: all). Available: %s."
      (String.concat ", " Oracle.names)
  in
  Arg.(value & opt string "" & info [ "oracle" ] ~doc)

let log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log" ] ~docv:"FILE"
        ~doc:"Append one JSON line per failure to $(docv).")

let replay_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"SCENARIO"
        ~doc:
          "Run a single scenario given in Scenario.to_string form (as \
           printed in reproducers) instead of fuzzing.")

let inject_bug_arg =
  Arg.(
    value & flag
    & info [ "inject-bug" ]
        ~doc:
          "Mutation smoke test: corrupt every outcome before the oracles \
           see it (see $(b,--inject-mode)), and plant a Random.self_init \
           call in a scratch copy of a source file (the determinism lint \
           must catch it). The run still exits non-zero; exit 3 means a \
           smoke check itself failed.")

let inject_mode_arg =
  Arg.(
    value
    & opt (enum [ ("counters", `Counters); ("backlog", `Backlog) ]) `Counters
    & info [ "inject-mode" ] ~docv:"MODE"
        ~doc:
          "Which bug $(b,--inject-bug) plants. $(b,counters) inflates the \
           delivered-packet counter (the conservation oracle must catch \
           it); $(b,backlog) splices a deterministically accelerating \
           synthetic NACK storm into every core trace (the backlog \
           stability oracle must catch it).")

let guided_arg =
  Arg.(
    value & flag
    & info [ "guided" ]
        ~doc:
          "Coverage-guided generation: pick each scenario among a few \
           candidate draws from its own seed, preferring unseen feature \
           buckets. Off by default (the historical uniform stream).")

let coverage_arg =
  Arg.(
    value & flag
    & info [ "coverage" ]
        ~doc:"Print the run's coverage report (features, events, branches).")

let coverage_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "coverage-out" ] ~docv:"FILE"
        ~doc:"Write the serialized coverage table to $(docv).")

let min_coverage_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "min-coverage" ] ~docv:"FRAC"
        ~doc:
          "Fail (exit 1) unless the run's feature-bucket coverage fraction \
           reaches $(docv).")

let frontier_arg =
  Arg.(
    value & flag
    & info [ "frontier" ]
        ~doc:
          "Instead of fuzzing, sweep the multicast slotting/damping \
           parameter grid under a fixed lossy flash workload and print a \
           NACK-stability frontier table judged by the backlog oracle's \
           measure.")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ] ~doc:"Print a dot per scenario to stderr.")

(* The planted bug: claim a few more deliveries than were sent, the
   exact class of accounting error the conservation oracle exists to
   catch. *)
let corrupt_delivered outcome =
  match outcome.Scenario.payload with
  | Scenario.Core_result r ->
      { outcome with
        Scenario.payload =
          Scenario.Core_result
            { r with
              Experiment.packets_delivered =
                r.Experiment.packets_delivered + 100 } }
  | Scenario.Gossip_result r ->
      { outcome with
        Scenario.payload =
          Scenario.Gossip_result
            { r with
              Softstate_core.Gossip.deliveries =
                r.Softstate_core.Gossip.deliveries + 100 } }
  | Scenario.Sstp_result _ -> outcome

module Trace = Softstate_obs.Trace

(* The planted NACK storm: splice a synthetic feedback series into the
   trace whose per-quarter volume explodes toward the horizon and
   dwarfs the run's real repair count — the exact signature the
   backlog stability oracle exists to catch. Purely a function of the
   outcome, so replay determinism is preserved. *)
let corrupt_backlog outcome =
  match outcome.Scenario.payload with
  | Scenario.Sstp_result _ | Scenario.Gossip_result _ -> outcome
  | Scenario.Core_result _ when outcome.Scenario.horizon <= 0.0 -> outcome
  | Scenario.Core_result _ ->
      let horizon = outcome.Scenario.horizon in
      let repairs =
        List.fold_left
          (fun n ev ->
            match ev.Trace.kind with Trace.Repair -> n + 1 | _ -> n)
          0 outcome.Scenario.events
      in
      (* enough volume that NACKs dwarf repairs even after the real
         NACKs are counted alongside, with an 80% last-quarter share *)
      let total = max 512 (8 * repairs) in
      let quarter_share = [| 0.02; 0.05; 0.13; 0.80 |] in
      let synth = ref [] in
      Array.iteri
        (fun q share ->
          let n = int_of_float (share *. float_of_int total) in
          let q_start = float_of_int q *. horizon /. 4.0 in
          for i = 0 to n - 1 do
            let time =
              q_start
              +. (float_of_int i +. 0.5) /. float_of_int n *. horizon /. 4.0
            in
            synth :=
              Trace.event ~time ~src:"injected" ~detail:"backlog-storm"
                Trace.Nack
              :: !synth
          done)
        quarter_share;
      let by_time a b = compare a.Trace.time b.Trace.time in
      let events =
        List.merge by_time outcome.Scenario.events
          (List.sort by_time !synth)
      in
      { outcome with Scenario.events }

let parse_oracles s =
  if s = "" then []
  else List.filter (fun x -> x <> "") (String.split_on_char ',' s)

(* ------------------------------------------------------------------ *)
(* The stability frontier: a fixed lossy multicast workload whose
   repair loop goes supercritical exactly when NACK damping is off and
   the per-transmission loss exposure (loss x receivers) exceeds one.
   Every retransmission consumes a fresh sequence number, so each lost
   repair breeds fresh gap NACKs; damping collapses the per-loss NACK
   group to roughly one request and keeps the branching ratio under
   one. The sweep holds the workload fixed and walks the
   slotting/damping knobs, judging each cell with the same measure the
   backlog oracle enforces. *)

let frontier_config ~suppression ~nack_slot ~loss =
  { Experiment.default with
    Experiment.duration = 4.0;
    lambda_kbps = 1.0;
    size_bits = 1000;
    protocol =
      Experiment.Multicast
        { receivers = 8; mu_hot_kbps = 1000.0; mu_cold_kbps = 2.0;
          mu_fb_kbps = 100.0; nack_slot; nack_bits = 100; suppression };
    loss = Experiment.Bernoulli loss;
    death = Softstate_core.Base.Lifetime_fixed 600.0;
    expiry = Softstate_core.Base.No_expiry;
    record_series = true;
    obs = None }

let frontier_losses = [ 0.1; 0.2; 0.3; 0.4 ]

let run_frontier () =
  Printf.printf
    "NACK-stability frontier (8 receivers, 1 arrival/s, 4 s horizon)\n";
  Printf.printf "cell: NACK issues in the last quarter, * = backlog oracle \
                 flags the run unstable\n\n";
  Printf.printf "%-10s %-8s" "damping" "slot";
  List.iter (fun p -> Printf.printf " %11s" (Printf.sprintf "p=%.2f" p))
    frontier_losses;
  print_newline ();
  let unstable_cells = ref 0 in
  List.iter
    (fun (suppression, nack_slot, label) ->
      Printf.printf "%-10s %-8s"
        (if suppression then "on" else "off")
        label;
      List.iter
        (fun loss ->
          let c = frontier_config ~suppression ~nack_slot ~loss in
          let outcome = Scenario.run (Scenario.Core c) in
          let cell =
            match Oracle.backlog_measure outcome with
            | None -> "-"
            | Some m ->
                let q4 = m.Oracle.b_nack_quarters.(3) in
                if Oracle.backlog_unstable m then begin
                  incr unstable_cells;
                  Printf.sprintf "%d*" q4
                end
                else string_of_int q4
          in
          Printf.printf " %11s" cell)
        frontier_losses;
      print_newline ())
    [ (true, 0.005, "0.005"); (true, 0.05, "0.05"); (true, 0.5, "0.5");
      (false, 0.5, "-") ];
  Printf.printf
    "\n%d unstable cell(s); damping off with loss x receivers > 1 is the \
     supercritical regime\n"
    !unstable_cells;
  0

(* ------------------------------------------------------------------ *)
(* Lint mutation smoke: the same guard for the static pass that the
   corrupted counters are for the oracles. Plant an unseeded-RNG call
   in a scratch copy of a real source file; if the determinism lint
   does not report D001 at the planted line, the pass has rotted. *)

module Lint = Softstate_lint

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_smoke () =
  let base =
    let candidate = Filename.concat "lib" (Filename.concat "util" "ewma.ml") in
    if Sys.file_exists candidate then read_file candidate
    else "let tick x = x + 1\n"
  in
  let base = if String.length base > 0 && base.[String.length base - 1] = '\n'
    then base else base ^ "\n" in
  let planted_line =
    1 + String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 base
  in
  let planted = base ^ "let () = Random.self_init ()\n" in
  let scratch = Filename.temp_file "lint_smoke" ".ml" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove scratch with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin scratch in
      output_string oc planted;
      close_out oc;
      let clean = Lint.Driver.scan_source ~file:"lib/scratch/smoke.ml" base in
      let findings = Lint.Driver.scan_paths [ scratch ] in
      let caught =
        List.exists
          (fun f ->
            f.Lint.Finding.rule = "D001"
            && f.Lint.Finding.line = planted_line)
          findings
      in
      let cli_caught =
        (* The built lint_cli.exe sits next to this executable; assert
           the user-facing entry point also exits non-zero on it. *)
        let exe =
          Filename.concat (Filename.dirname Sys.executable_name)
            "lint_cli.exe"
        in
        if Sys.file_exists exe then
          Sys.command
            (Printf.sprintf "%s %s >/dev/null 2>&1" (Filename.quote exe)
               (Filename.quote scratch))
          <> 0
        else true
      in
      if clean <> [] then begin
        Printf.eprintf
          "lint-smoke: FAILED — unplanted copy already has findings\n";
        false
      end
      else if not caught then begin
        Printf.eprintf
          "lint-smoke: FAILED — planted Random.self_init at line %d not \
           reported\n"
          planted_line;
        false
      end
      else if not cli_caught then begin
        Printf.eprintf "lint-smoke: FAILED — lint_cli.exe exited 0\n";
        false
      end
      else begin
        Printf.printf
          "lint-smoke: planted Random.self_init caught at line %d\n"
          planted_line;
        true
      end)

(* Same guard for the whole-program phase: plant a shared-ref-across-
   domains race and a hot-path closure in a scratch tree (under a lib/
   segment, which is what puts the R/A rules in scope) and assert R001
   and an A-rule fire at the planted lines, with a non-zero CLI exit. *)
let race_smoke () =
  let dir = Filename.temp_file "lint_race" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let libdir = Filename.concat dir "lib" in
  Sys.mkdir libdir 0o755;
  let file = Filename.concat libdir "race_smoke.ml" in
  let race_line = 2 and alloc_line = 3 in
  let src =
    "let shared = ref 0\n\
     let race () = Domain.spawn (fun () -> incr shared)\n\
     let[@hot] hot_sum xs = List.fold_left (fun a b -> a + b) 0 xs\n"
  in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove file with Sys_error _ -> ());
      (try Sys.rmdir libdir with Sys_error _ -> ());
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin file in
      output_string oc src;
      close_out oc;
      let findings = Lint.Driver.scan_paths [ dir ] in
      let fired rule line =
        List.exists
          (fun f -> f.Lint.Finding.rule = rule && f.Lint.Finding.line = line)
          findings
      in
      let race_caught = fired "R001" race_line in
      let alloc_caught =
        List.exists (fun r -> fired r alloc_line) [ "A001"; "A002"; "A004" ]
      in
      let cli_caught =
        let exe =
          Filename.concat (Filename.dirname Sys.executable_name)
            "lint_cli.exe"
        in
        if Sys.file_exists exe then
          Sys.command
            (Printf.sprintf "%s --rules R,A %s >/dev/null 2>&1"
               (Filename.quote exe) (Filename.quote dir))
          <> 0
        else true
      in
      if not race_caught then begin
        Printf.eprintf
          "race-smoke: FAILED — planted shared-ref race at line %d not \
           reported as R001\n"
          race_line;
        false
      end
      else if not alloc_caught then begin
        Printf.eprintf
          "race-smoke: FAILED — planted hot-path closure at line %d not \
           reported by any A-rule\n"
          alloc_line;
        false
      end
      else if not cli_caught then begin
        Printf.eprintf "race-smoke: FAILED — lint_cli.exe exited 0\n";
        false
      end
      else begin
        Printf.printf
          "race-smoke: planted race caught as R001 at line %d, hot-path \
           allocation at line %d\n"
          race_line alloc_line;
        true
      end)

let run seed count max_shrink oracle log replay inject_bug inject_mode
    progress guided coverage coverage_out min_coverage frontier =
  let oracles = parse_oracles oracle in
  let corrupt =
    if not inject_bug then None
    else
      match inject_mode with
      | `Counters -> Some corrupt_delivered
      | `Backlog -> Some corrupt_backlog
  in
  if frontier then run_frontier ()
  else if inject_bug && not (lint_smoke () && race_smoke ()) then 3
  else
  match replay with
  | Some spec -> (
      match Scenario.of_string spec with
      | Error e ->
          Printf.eprintf "bad scenario: %s\n" e;
          2
      | Ok scenario -> (
          match Fuzz.check_scenario ?corrupt ~oracles scenario with
          | [] ->
              print_endline "ok: all oracles passed";
              0
          | vs ->
              List.iter
                (fun v ->
                  Printf.printf "%-12s %s\n" v.Oracle.oracle v.Oracle.message)
                vs;
              1))
  | None ->
      let log_chan = Option.map open_out log in
      let log_fn =
        Option.map
          (fun oc line ->
            output_string oc line;
            flush oc)
          log_chan
      in
      let on_progress =
        if progress then
          Some
            (fun i ->
              prerr_char '.';
              if (i + 1) mod 50 = 0 then Printf.eprintf " %d\n" (i + 1);
              flush stderr)
        else None
      in
      let stats =
        Fuzz.run ?corrupt ~oracles ~max_shrink ?log:log_fn ?on_progress
          ~guided ~seed ~count ()
      in
      Option.iter close_out log_chan;
      Printf.printf "%d scenarios, %d runs, %d failures\n"
        stats.Fuzz.scenarios stats.Fuzz.runs
        (List.length stats.Fuzz.failures);
      let cov = stats.Fuzz.coverage in
      Printf.printf
        "coverage: %d/%d feature buckets (%.0f%%), %d/%d event kinds, \
         %d/%d oracle branches%s\n"
        (List.length (Check.Coverage.seen_features cov))
        (List.length Scenario.feature_catalogue)
        (100.0 *. Check.Coverage.feature_fraction cov)
        (List.length (Check.Coverage.seen_events cov))
        (List.length Check.Coverage.event_catalogue)
        (List.length (Check.Coverage.seen_branches cov))
        (List.length Oracle.branches)
        (if guided then " [guided]" else "");
      if coverage then print_string (Check.Coverage.report cov);
      Option.iter
        (fun path ->
          let oc = open_out path in
          output_string oc (Check.Coverage.to_string cov);
          close_out oc)
        coverage_out;
      let coverage_ok =
        match min_coverage with
        | None -> true
        | Some frac ->
            let got = Check.Coverage.feature_fraction cov in
            if got < frac then begin
              Printf.printf
                "coverage gate: FAILED — feature coverage %.3f below \
                 required %.3f\n"
                got frac;
              false
            end
            else begin
              Printf.printf "coverage gate: ok (%.3f >= %.3f)\n" got frac;
              true
            end
      in
      List.iter
        (fun f ->
          Printf.printf "\nscenario %d failed:\n" f.Fuzz.index;
          List.iter
            (fun v ->
              Printf.printf "  %-12s %s\n" v.Oracle.oracle v.Oracle.message)
            f.Fuzz.violations;
          Printf.printf "  shrunk (%d runs): %s\n" f.Fuzz.shrink_runs
            (Scenario.to_string f.Fuzz.shrunk);
          Printf.printf "  reproduce with:\n";
          String.split_on_char '\n' (Fuzz.reproducer f)
          |> List.iter (Printf.printf "    %s\n"))
        stats.Fuzz.failures;
      if stats.Fuzz.failures = [] && coverage_ok then 0 else 1

let cmd =
  let doc = "fuzz the soft-state simulator with invariant oracles" in
  let info = Cmd.info "softstate-fuzz" ~doc in
  Cmd.v info
    Term.(
      const run $ seed_arg $ count_arg $ max_shrink_arg $ oracle_arg
      $ log_arg $ replay_arg $ inject_bug_arg $ inject_mode_arg
      $ progress_arg $ guided_arg $ coverage_arg $ coverage_out_arg
      $ min_coverage_arg $ frontier_arg)

let () = exit (Cmd.eval' cmd)

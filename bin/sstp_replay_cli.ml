(* Replay a synthetic application workload over an SSTP session and
   report the consistency, latency and traffic outcome.

     dune exec bin/sstp_replay_cli.exe -- --workload session-directory \
       --loss 0.2 --mu-total 128 --duration 600 *)

open Cmdliner

module Engine = Softstate_sim.Engine
module Net = Softstate_net
module Session = Sstp.Session
module Gen = Softstate_trace.Generators
module Trace = Softstate_trace.Trace_event
module Rng = Softstate_util.Rng

type workload = Session_directory | Routing_updates | Stock_ticker

let workload_arg =
  let doc = "Workload: session-directory, routing-updates or stock-ticker." in
  Arg.(
    value
    & opt
        (enum
           [ ("session-directory", Session_directory);
             ("routing-updates", Routing_updates);
             ("stock-ticker", Stock_ticker) ])
        Session_directory
    & info [ "workload"; "w" ] ~doc)

let float_arg names default doc =
  Arg.(value & opt float default & info names ~doc)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.")

let loss_arg = float_arg [ "loss"; "l" ] 0.1 "Data-channel loss probability."
let mu_arg = float_arg [ "mu-total" ] 128.0 "Session bandwidth, kb/s."
let duration_arg = float_arg [ "duration"; "d" ] 600.0 "Trace duration, seconds."
let fb_share_arg = float_arg [ "fb-share" ] 0.15 "Feedback share of the session."

let run workload seed loss mu_total duration fb_share trace_file metrics_file
    report =
  let engine = Engine.create () in
  let obs = Obs_cli.setup ~trace_file ~metrics_file ~report in
  (match obs.Obs_cli.obs with
  | Some o -> Softstate_obs.Engine_probe.attach ~obs:o engine
  | None -> ());
  let mu = mu_total *. 1000.0 in
  let reliability =
    if fb_share <= 0.0 then Session.Announce_only
    else
      Session.Manual
        { mu_hot_bps = 0.75 *. (1.0 -. fb_share) *. mu;
          mu_cold_bps = 0.25 *. (1.0 -. fb_share) *. mu;
          mu_fb_bps = fb_share *. mu }
  in
  let config =
    { (Session.default_config ~mu_total_bps:mu) with
      Session.loss = Net.Loss.bernoulli loss;
      reliability;
      summary_period = 0.5 }
  in
  let session =
    Session.create ?obs:obs.Obs_cli.obs ~engine ~rng:(Rng.create seed) ~config
      ()
  in
  Session.track_consistency session ~period:0.5;
  let trace_rng = Rng.create (seed + 1) in
  let trace =
    match workload with
    | Session_directory -> Gen.session_directory ~rng:trace_rng ~duration ()
    | Routing_updates -> Gen.routing_updates ~rng:trace_rng ~duration ()
    | Stock_ticker -> Gen.stock_ticker ~rng:trace_rng ~duration ()
  in
  (* propagation delay of each update, receiver-side *)
  let published : (string, float) Hashtbl.t = Hashtbl.create 1024 in
  let staleness = Softstate_util.Stats.Welford.create () in
  Sstp.Receiver.on_update (Session.receiver session) (fun path _ ->
      match Hashtbl.find_opt published (Sstp.Path.to_string path) with
      | Some t ->
          Softstate_util.Stats.Welford.add staleness (Engine.now engine -. t)
      | None -> ());
  Trace.replay engine trace
    ~put:(fun ~path ~payload ->
      Hashtbl.replace published path (Engine.now engine);
      Session.publish session ~path ~payload)
    ~remove:(fun ~path -> Session.remove session ~path);
  Engine.run ~until:(duration +. 60.0) engine;
  let now = Engine.now engine in
  obs.Obs_cli.finish ~now;
  match obs.Obs_cli.report with
  | Some format ->
      let module R = Softstate_obs.Report in
      let sections =
        [ R.section "run"
            [ ("events_replayed", R.int (Trace.length trace));
              ("seed", R.int seed);
              ("duration_s", R.float duration);
              ("mu_total_kbps", R.float mu_total);
              ("loss", R.float loss) ];
          R.section "consistency"
            [ ("average", R.float (Session.average_consistency session));
              ("final", R.float (Session.consistency session));
              ("converged", R.bool (Session.converged session));
              ( "staleness_mean_s",
                R.float (Softstate_util.Stats.Welford.mean staleness) );
              ( "staleness_samples",
                R.int (Softstate_util.Stats.Welford.count staleness) ) ];
          R.section "traffic"
            [ ("data_packets", R.int (Session.data_packets session));
              ("feedback_packets", R.int (Session.feedback_packets session));
              ( "nacks_sent",
                R.int (Sstp.Receiver.nacks_sent (Session.receiver session)) );
              ( "queries_sent",
                R.int (Sstp.Receiver.queries_sent (Session.receiver session))
              );
              ("utilisation", R.float (Session.link_utilisation session)) ] ]
      in
      let sections =
        match obs.Obs_cli.obs with
        | None -> sections
        | Some o ->
            sections @ [ R.of_metrics (Softstate_obs.Obs.metrics o) ~now ]
      in
      print_string (R.render format (R.make ~name:"sstp-replay" sections));
      print_newline ()
  | None ->
      Printf.printf "events replayed       %d\n" (Trace.length trace);
      Printf.printf "average consistency   %.4f\n"
        (Session.average_consistency session);
      Printf.printf "final consistency     %.4f (converged %b)\n"
        (Session.consistency session)
        (Session.converged session);
      Printf.printf "update staleness      %.3f s mean (n=%d)\n"
        (Softstate_util.Stats.Welford.mean staleness)
        (Softstate_util.Stats.Welford.count staleness);
      Printf.printf "data packets          %d delivered (utilisation %.3f)\n"
        (Session.data_packets session)
        (Session.link_utilisation session);
      Printf.printf "feedback              %d delivered; %d NACKs, %d queries\n"
        (Session.feedback_packets session)
        (Sstp.Receiver.nacks_sent (Session.receiver session))
        (Sstp.Receiver.queries_sent (Session.receiver session))

let cmd =
  let doc = "replay a synthetic workload over an SSTP session" in
  Cmd.v (Cmd.info "sstp-replay" ~doc)
    Term.(
      const run $ workload_arg $ seed_arg $ loss_arg $ mu_arg $ duration_arg
      $ fb_share_arg $ Obs_cli.trace_arg $ Obs_cli.metrics_arg
      $ Obs_cli.report_arg)

let () = exit (Cmd.eval cmd)

(* Fuzz smoke experiment: a bounded pass of the scenario fuzzer with a
   date-pinned seed, timed, failing the harness on any oracle
   violation. The CI fuzz-smoke job drives bin/fuzz_cli.exe directly
   (for the JSONL failure artifact); this entry reproduces the same
   pass from the bench harness and reports throughput. *)

module Fuzz = Softstate_check.Fuzz
module Coverage = Softstate_check.Coverage
module Scenario = Softstate_check.Scenario

let seed = 20260807
let count = 100

(* Generation-only: how many scenarios until every feature bucket has
   been touched at least once? Capped so a regression cannot hang the
   bench; reports the cap as "never" instead. *)
let scenarios_to_full ~guided ~cap =
  let rec go n =
    if n > cap then None
    else if
      Coverage.feature_fraction (Fuzz.feature_coverage ~guided ~seed ~count:n ())
      >= 1.0
    then Some n
    else go (n + 10)
  in
  go 10

let run () =
  let t0 = Unix.gettimeofday () in
  let stats = Fuzz.run ~seed ~count () in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "fuzz-smoke: seed %d, %d scenarios, %d runs, %d failures in %.1f s\n"
    seed stats.Fuzz.scenarios stats.Fuzz.runs
    (List.length stats.Fuzz.failures) dt;
  List.iter
    (fun f ->
      Printf.printf "  scenario %d failed, shrunk to: %s\n" f.Fuzz.index
        (Scenario.to_string f.Fuzz.shrunk))
    stats.Fuzz.failures;
  if stats.Fuzz.failures <> [] then exit 1;
  (* coverage guidance must beat uniform generation at equal count —
     compared below saturation (both streams touch all 53 buckets by
     ~100 scenarios; at 20 the gap is widest) *)
  let compare_count = 20 in
  let uniform =
    Coverage.feature_count (Fuzz.feature_coverage ~seed ~count:compare_count ())
  in
  let guided =
    Coverage.feature_count
      (Fuzz.feature_coverage ~guided:true ~seed ~count:compare_count ())
  in
  Printf.printf
    "fuzz-coverage: %d scenarios touch %d feature buckets uniform, %d \
     guided\n"
    compare_count uniform guided;
  let show = function
    | Some n -> string_of_int n
    | None -> "never"
  in
  let cap = 400 in
  Printf.printf
    "fuzz-coverage: scenarios to full feature coverage: %s uniform, %s \
     guided (cap %d)\n"
    (show (scenarios_to_full ~guided:false ~cap))
    (show (scenarios_to_full ~guided:true ~cap))
    cap;
  if guided <= uniform then begin
    Printf.printf
      "fuzz-coverage: FAILED — guided generation did not beat uniform\n";
    exit 1
  end

(* Fuzz smoke experiment: a bounded pass of the scenario fuzzer with a
   date-pinned seed, timed, failing the harness on any oracle
   violation. The CI fuzz-smoke job drives bin/fuzz_cli.exe directly
   (for the JSONL failure artifact); this entry reproduces the same
   pass from the bench harness and reports throughput. *)

module Fuzz = Softstate_check.Fuzz
module Scenario = Softstate_check.Scenario

let seed = 20260807
let count = 100

let run () =
  let t0 = Unix.gettimeofday () in
  let stats = Fuzz.run ~seed ~count () in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "fuzz-smoke: seed %d, %d scenarios, %d runs, %d failures in %.1f s\n"
    seed stats.Fuzz.scenarios stats.Fuzz.runs
    (List.length stats.Fuzz.failures) dt;
  List.iter
    (fun f ->
      Printf.printf "  scenario %d failed, shrunk to: %s\n" f.Fuzz.index
        (Scenario.to_string f.Fuzz.shrunk))
    stats.Fuzz.failures;
  if stats.Fuzz.failures <> [] then exit 1

(* Simulation experiments: Figures 5, 6, 8, 9, 10, 11 and the
   cross-validation / ablation studies. All runs are deterministic
   (fixed seeds) and use the low-level announce/listen simulator of
   Softstate_core. *)

module E = Softstate_core.Experiment
module Base = Softstate_core.Base
module Consistency = Softstate_core.Consistency
module Sched = Softstate_sched.Scheduler
module Q = Softstate_queueing.Open_loop

let duration = 8000.0

(* Run a row-major [xs x cols] grid of configurations, optionally
   across domains (main.exe --jobs), and hand each row back as
   (x, per-column results). Results are independent of the job
   count — see Experiment.run_grid. *)
let grid_rows ~xs ~cols ~config =
  let configs =
    List.concat_map (fun x -> List.map (fun c -> config x c) cols) xs
  in
  let results = E.run_grid ~jobs:!Tables.jobs configs in
  let ncols = List.length cols in
  let rec rows xs results =
    match xs with
    | [] -> []
    | x :: xs' ->
        let rec take n l =
          if n = 0 then ([], l)
          else
            match l with
            | [] -> invalid_arg "grid_rows: short result list"
            | r :: l' ->
                let row, rest = take (n - 1) l' in
                (r :: row, rest)
        in
        let row, rest = take ncols results in
        (x, row) :: rows xs' rest
  in
  rows xs results

let lifetime_config =
  { E.default with
    E.duration;
    death = Base.Lifetime_fixed 30.0;
    empty_policy = Consistency.Empty_is_consistent }

(* Figure 5: two-queue consistency vs hot bandwidth; total data
   bandwidth fixed at 45 kb/s, lambda = 15 kb/s. Consistency is poor
   while mu_hot < lambda and plateaus beyond. *)
let fig5 () =
  Tables.header
    "Figure 5 - two-queue consistency vs mu_hot (lambda=15, mu_data=45 kb/s)";
  let losses = [ 0.1; 0.3; 0.5 ] in
  let hots = [ 5.0; 10.0; 14.0; 16.0; 20.0; 25.0; 30.0; 35.0; 40.0 ] in
  let rows =
    grid_rows ~xs:hots ~cols:losses ~config:(fun mu_hot loss ->
        { lifetime_config with
          E.loss = E.Bernoulli loss;
          protocol =
            E.Two_queue { mu_hot_kbps = mu_hot; mu_cold_kbps = 45.0 -. mu_hot }
        })
  in
  Tables.series ~x_label:"mu_hot" ~x_format:Tables.kbps
    ~columns:(List.map (fun l -> Printf.sprintf "loss %s" (Tables.pct l)) losses)
    ~rows:
      (List.map
         (fun (mu_hot, rs) ->
           (mu_hot, List.map (fun r -> r.E.avg_consistency) rs))
         rows)
    ();
  print_newline ();
  print_endline
    "shape check: sharp knee at mu_hot = lambda = 15 kb/s; little gain";
  print_endline "beyond it (paper: \"optimal consistency for mu_hot >= lambda\")."

(* Figure 6: receive latency vs mu_cold/mu_hot with mu_hot pinned just
   above lambda. The latency first rises (survivorship bias: with no
   cold bandwidth only first-shot successes are ever measured) then
   falls as cold bandwidth speeds recovery. *)
let fig6 () =
  Tables.header
    "Figure 6 - receive latency vs mu_cold/mu_hot (lambda=15, mu_hot=16 kb/s)";
  let ratios = [ 0.01; 0.05; 0.1; 0.25; 0.5; 1.0; 1.5; 2.0; 3.0; 4.0 ] in
  let rows =
    List.map
      (fun ratio ->
        let r =
          E.run
            { lifetime_config with
              E.duration = 12_000.0;
              loss = E.Bernoulli 0.3;
              protocol =
                E.Two_queue { mu_hot_kbps = 16.0; mu_cold_kbps = 16.0 *. ratio } }
        in
        ( ratio,
          [ r.E.latency_mean; r.E.avg_consistency;
            float_of_int r.E.deliveries ] ))
      ratios
  in
  Tables.series ~x_label:"cold/hot"
    ~x_format:(fun x -> Printf.sprintf "%.2f" x)
    ~columns:[ "latency(s)"; "consist"; "delivered" ]
    ~rows ();
  print_newline ();
  print_endline
    "shape check: latency rises then falls with cold bandwidth; delivery";
  print_endline
    "counts expose the survivorship bias at tiny mu_cold (paper section 4)."

let feedback_protocol ~mu_tot ~fb_share ~hot_frac =
  let mu_fb = fb_share *. mu_tot in
  let mu_data = mu_tot -. mu_fb in
  if mu_fb <= 0.0 then
    E.Two_queue
      { mu_hot_kbps = hot_frac *. mu_data;
        mu_cold_kbps = (1.0 -. hot_frac) *. mu_data }
  else
    E.Feedback
      { mu_hot_kbps = hot_frac *. mu_data;
        mu_cold_kbps = (1.0 -. hot_frac) *. mu_data;
        mu_fb_kbps = mu_fb;
        (* 500-bit NACKs: a small control packet. At 40% loss the NACK
           load is 0.4 x mu_data/2 kb/s, so the paper's "20-30% of the
           session is enough for feedback" threshold falls where
           Figure 8 puts it. *)
        nack_bits = 500;
        fb_lossy = false }

(* Figure 8: consistency over time for three feedback allocations at
   40% loss. The collapse case gives feedback 70% of the session. *)
let fig8 () =
  Tables.header
    "Figure 8 - consistency vs time, feedback share 0 / 25% / 70% (loss=40%)";
  let shares = [ 0.0; 0.25; 0.7 ] in
  let series_of share =
    let r =
      E.run
        { lifetime_config with
          E.duration = 2000.0;
          record_series = true;
          loss = E.Bernoulli 0.4;
          protocol = feedback_protocol ~mu_tot:45.0 ~fb_share:share ~hot_frac:0.8 }
    in
    r.E.series
  in
  let all = List.map series_of shares in
  (* resample each series at 100 s ticks *)
  let sample series t =
    let rec last_before acc = function
      | [] -> acc
      | (time, v) :: rest -> if time <= t then last_before v rest else acc
    in
    last_before nan series
  in
  let ticks = List.init 20 (fun i -> 100.0 *. float_of_int (i + 1)) in
  Tables.series ~x_label:"time" ~x_format:Tables.seconds
    ~columns:(List.map (fun s -> Printf.sprintf "fb=%s" (Tables.pct s)) shares)
    ~rows:(List.map (fun t -> (t, List.map (fun s -> sample s t) all)) ticks)
    ();
  print_newline ();
  print_endline
    "shape check: open loop hovers well below 1; a moderate feedback share";
  print_endline
    "reaches ~0.99; at 70% feedback the data channel starves (mu_data < ";
  print_endline "lambda) and consistency collapses (paper Figure 8)."

(* Figure 9: steady-state consistency vs feedback share for several
   loss rates. *)
let fig9 () =
  Tables.header
    "Figure 9 - consistency vs feedback share (lambda=15, mu_tot=45 kb/s)";
  let losses = [ 0.1; 0.3; 0.5 ] in
  let shares = [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6 ] in
  let rows =
    grid_rows ~xs:shares ~cols:losses ~config:(fun share loss ->
        { lifetime_config with
          E.loss = E.Bernoulli loss;
          protocol =
            feedback_protocol ~mu_tot:45.0 ~fb_share:share ~hot_frac:0.8 })
  in
  Tables.series ~x_label:"fb share" ~x_format:Tables.pct
    ~columns:(List.map (fun l -> Printf.sprintf "loss %s" (Tables.pct l)) losses)
    ~rows:
      (List.map
         (fun (share, rs) ->
           (share, List.map (fun r -> r.E.avg_consistency) rs))
         rows)
    ();
  print_newline ();
  print_endline
    "shape check: a modest feedback share buys a large consistency gain";
  print_endline
    "(10-50% depending on loss); past the useful threshold more feedback";
  print_endline "only eats data bandwidth and consistency falls (paper Figure 9)."

(* Figure 10: consistency vs hot share of the data bandwidth at 10%
   loss; mu_data = 38, mu_fb = 7. *)
let fig10 () =
  Tables.header
    "Figure 10 - consistency vs mu_hot/mu_data (loss=10%, mu_data=38, mu_fb=7)";
  let fracs = [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ] in
  let rows =
    List.map
      (fun frac ->
        let r =
          E.run
            { lifetime_config with
              E.loss = E.Bernoulli 0.1;
              protocol =
                E.Feedback
                  { mu_hot_kbps = frac *. 38.0;
                    mu_cold_kbps = (1.0 -. frac) *. 38.0;
                    mu_fb_kbps = 7.0; nack_bits = 1000; fb_lossy = false } }
        in
        (frac, [ r.E.avg_consistency ]))
      fracs
  in
  Tables.series ~x_label:"hot/data" ~x_format:Tables.pct
    ~columns:[ "consist" ] ~rows ();
  print_newline ();
  print_endline
    "shape check: consistency is poor while mu_hot < lambda (hot share";
  print_endline
    "< 42%), jumps across the knee, and is flat beyond (paper Figure 10)."

(* Figure 11: the same sweep across loss rates - the knee and the
   loss-imposed ceiling. *)
let fig11 () =
  Tables.header
    "Figure 11 - consistency vs mu_hot/mu_data across loss rates (mu_fb=7)";
  let losses = [ 0.01; 0.2; 0.3; 0.4; 0.5 ] in
  let fracs = [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ] in
  let rows =
    grid_rows ~xs:fracs ~cols:losses ~config:(fun frac loss ->
        { lifetime_config with
          E.loss = E.Bernoulli loss;
          protocol =
            E.Feedback
              { mu_hot_kbps = frac *. 38.0;
                mu_cold_kbps = (1.0 -. frac) *. 38.0;
                mu_fb_kbps = 7.0; nack_bits = 1000; fb_lossy = false } })
  in
  Tables.series ~x_label:"hot/data" ~x_format:Tables.pct
    ~columns:(List.map (fun l -> Printf.sprintf "loss %s" (Tables.pct l)) losses)
    ~rows:
      (List.map
         (fun (frac, rs) ->
           (frac, List.map (fun r -> r.E.avg_consistency) rs))
         rows)
    ();
  print_newline ();
  print_endline
    "shape check: every loss rate shows the same knee near mu_hot = lambda;";
  print_endline
    "the loss rate caps the attainable consistency regardless of the";
  print_endline "hot/cold split (paper Figure 11)."

(* Cross-validation: simulated open loop against the closed form. *)
let validate () =
  Tables.header "Validation - simulated open loop vs the Jackson closed form";
  Printf.printf "%6s %6s | %10s %10s %8s | %10s %10s %8s\n" "loss" "p_d"
    "sim E[c]" "analytic" "err" "sim red." "analytic" "err";
  Tables.hrule 76;
  List.iter
    (fun (p_loss, p_death) ->
      let r =
        E.run
          { E.default with
            E.duration = 20_000.0;
            death = Base.Per_service p_death;
            loss = E.Bernoulli p_loss;
            protocol = E.Open_loop { mu_data_kbps = 45.0 };
            empty_policy = Consistency.Empty_is_zero }
      in
      let p = { Q.lambda = 15.0; mu_ch = 45.0; p_loss; p_death } in
      let analytic = Q.expected_consistency p in
      let share = Q.consistent_share p in
      Printf.printf "%6s %6.2f | %10.4f %10.4f %8.4f | %10.4f %10.4f %8.4f\n"
        (Tables.pct p_loss) p_death r.E.avg_consistency analytic
        (abs_float (r.E.avg_consistency -. analytic))
        r.E.redundant_fraction share
        (abs_float (r.E.redundant_fraction -. share)))
    [ (0.05, 0.4); (0.1, 0.5); (0.2, 0.5); (0.3, 0.6); (0.4, 0.7); (0.5, 0.8) ];
  print_newline ();
  print_endline
    "both the consistency metric and the redundant-bandwidth fraction of";
  print_endline "the simulator match the closed forms to a few parts in 100."

(* Burstiness: the paper claims the metric depends only on the mean
   loss rate. Bernoulli vs Gilbert-Elliott at equal means. *)
let burst () =
  Tables.header
    "Loss-pattern sensitivity - Bernoulli vs Gilbert-Elliott at equal mean";
  Printf.printf "%6s | %12s %14s %10s\n" "mean" "bernoulli" "gilbert-ell."
    "delta";
  Tables.hrule 50;
  List.iter
    (fun mean ->
      let bernoulli =
        E.run
          { lifetime_config with
            E.loss = E.Bernoulli mean;
            protocol = E.Two_queue { mu_hot_kbps = 20.0; mu_cold_kbps = 25.0 } }
      in
      (* bad state is sticky (mean burst 5 packets), calibrated to the
         same stationary mean: pi_bad = 0.25, loss_bad chosen so that
         0.75*loss_good + 0.25*loss_bad = mean *)
      let loss_good = mean /. 2.0 in
      let loss_bad = (mean -. (0.75 *. loss_good)) /. 0.25 in
      let ge =
        E.run
          { lifetime_config with
            E.loss =
              E.Gilbert_elliott
                { p_good_to_bad = 1.0 /. 15.0; p_bad_to_good = 0.2;
                  loss_good; loss_bad };
            protocol = E.Two_queue { mu_hot_kbps = 20.0; mu_cold_kbps = 25.0 } }
      in
      Printf.printf "%6s | %12.4f %14.4f %10.4f\n" (Tables.pct mean)
        bernoulli.E.avg_consistency ge.E.avg_consistency
        (abs_float (bernoulli.E.avg_consistency -. ge.E.avg_consistency)))
    [ 0.05; 0.1; 0.2; 0.3 ];
  print_newline ();
  print_endline
    "the average consistency is nearly identical under bursty and";
  print_endline
    "independent loss at equal mean rate, supporting the paper's";
  print_endline "pattern-insensitivity argument (section 3)."

(* Ablation: the proportional-share mechanism behind the hot/cold
   split is a policy detail (section 4 lists lottery, WFQ, stride). *)
let ablate_sched () =
  Tables.header
    "Ablation - scheduler choice for the hot/cold split (two-queue, 30% loss)";
  Printf.printf "%10s | %10s %12s %12s\n" "scheduler" "consist" "latency(s)"
    "hot sent";
  Tables.hrule 52;
  List.iter
    (fun sched ->
      let r =
        E.run
          { lifetime_config with
            E.loss = E.Bernoulli 0.3;
            sched;
            protocol = E.Two_queue { mu_hot_kbps = 20.0; mu_cold_kbps = 25.0 } }
      in
      Printf.printf "%10s | %10.4f %12.3f %12d\n" (Sched.algorithm_name sched)
        r.E.avg_consistency r.E.latency_mean r.E.sent_hot)
    Sched.all_algorithms;
  print_newline ();
  print_endline
    "all four mechanisms deliver the same consistency to within noise -";
  print_endline "the split ratio is what matters, not the mechanism (section 4)."

(* Ablation: death model - the analytic per-service death versus
   bounded lifetimes at matched mean services per record. *)
let ablate_death () =
  Tables.header
    "Ablation - death models (open loop, 20% loss, mu=45 kb/s)";
  Printf.printf "%24s | %10s %12s %10s\n" "death model" "consist"
    "latency(s)" "live(end)";
  Tables.hrule 64;
  let run death =
    E.run
      { E.default with
        E.duration = 10_000.0;
        death;
        loss = E.Bernoulli 0.2;
        protocol = E.Open_loop { mu_data_kbps = 45.0 };
        empty_policy = Consistency.Empty_is_consistent }
  in
  List.iter
    (fun (label, death) ->
      let r = run death in
      Printf.printf "%24s | %10.4f %12.3f %10d\n" label r.E.avg_consistency
        r.E.latency_mean r.E.live_at_end)
    [ ("per-service p_d=0.5", Base.Per_service 0.5);
      ("fixed lifetime 30 s", Base.Lifetime_fixed 30.0);
      ("exponential mean 30 s", Base.Lifetime_exp 30.0) ];
  print_newline ();
  print_endline
    "the paper's fixed per-packet death probability is an analytic";
  print_endline
    "convenience; bounded lifetimes keep the live set finite in overload";
  print_endline "and are what the simulation figures effectively assume."

(* Multicast scaling: NACK implosion and its cure. The paper's SSTP
   sketch defers multicast feedback to "slotting and damping [11, 20]";
   this experiment quantifies why: naive per-receiver NACKs grow
   linearly with the group and overflow the feedback channel, while
   suppression keeps the repair-request load near the single-receiver
   level at no consistency cost. *)
let multicast () =
  Tables.header
    "Multicast - feedback implosion vs slotting-and-damping (25% loss)";
  Printf.printf "%6s %12s | %10s %12s %12s %12s %10s %8s\n" "group"
    "suppression" "consist" "nacks want" "nacks sent" "suppressed" "fb ovfl"
    "reheats";
  Tables.hrule 94;
  List.iter
    (fun receivers ->
      List.iter
        (fun suppression ->
          let r =
            E.run
              { lifetime_config with
                E.duration = 3000.0;
                loss = E.Bernoulli 0.25;
                protocol =
                  E.Multicast
                    { receivers; mu_hot_kbps = 24.0; mu_cold_kbps = 10.0;
                      mu_fb_kbps = 11.0; nack_bits = 500; suppression;
                      nack_slot = 0.5 } }
          in
          Printf.printf "%6d %12s | %10.4f %12d %12d %12d %10d %8d\n"
            receivers
            (if suppression then "slot+damp" else "naive")
            r.E.avg_consistency r.E.nacks_wanted r.E.nacks_sent
            r.E.nacks_suppressed r.E.nack_overflows r.E.reheats)
        [ false; true ])
    [ 1; 2; 4; 8; 16; 32 ];
  print_newline ();
  print_endline
    "without suppression the request load grows linearly with the group";
  print_endline
    "and the feedback channel drops most of it; slotting and damping";
  print_endline
    "keeps requests near the single-receiver level at equal consistency.";
  print_endline
    "consistency itself is governed by repair demand vs data capacity:";
  print_endline
    "with independent loss the chance that *someone* misses a packet";
  print_endline
    "grows as 1-(1-p)^n, so repair (reheat) load rises with the group";
  print_endline
    "until it crosses the hot-queue capacity (the dip at small n); for";
  print_endline
    "larger groups excess requests are shed and recovery falls back to";
  print_endline
    "the cold queue - feedback alone cannot beat the multicast loss";
  print_endline
    "envelope, which is why SSTP also keeps cold announcements."

(* Soft-state expiry timers: the operational soft-state mechanism.
   Receivers expire records after [multiple] estimated refresh
   intervals of silence (scalable timers); small multiples expire live
   records by mistake (false expiry -> consistency loss), large ones
   hold dead state longer. *)
let timers () =
  Tables.header
    "Soft-state timers - expiry multiple vs consistency (open loop, 20% loss)";
  Printf.printf "%10s | %10s %14s %14s\n" "multiple" "consist" "false expiry"
    "stale purged";
  Tables.hrule 56;
  List.iter
    (fun multiple ->
      let r =
        E.run
          { E.default with
            E.duration = 8000.0;
            death = Base.Lifetime_fixed 60.0;
            expiry = Base.Refresh_timeout { multiple; sweep_period = 1.0 };
            loss = E.Bernoulli 0.2;
            protocol = E.Open_loop { mu_data_kbps = 45.0 };
            empty_policy = Consistency.Empty_is_consistent }
      in
      Printf.printf "%10.1f | %10.4f %14d %14d\n" multiple r.E.avg_consistency
        r.E.false_expiries r.E.stale_purged)
    [ 1.5; 2.0; 3.0; 5.0; 8.0 ];
  print_newline ();
  print_endline
    "small multiples misfire on refresh jitter (loss stretches observed";
  print_endline
    "gaps) and cost consistency; a multiple of 3-5 refresh intervals";
  print_endline
    "eliminates false expiry - the classic soft-state timer rule of thumb."

(* Bechamel micro-benchmarks of the substrate hot paths. *)

module Rng = Softstate_util.Rng
module Heap = Softstate_util.Heap
module Engine = Softstate_sim.Engine
module Stride = Softstate_sched.Stride
module Lottery = Softstate_sched.Lottery

open Bechamel
open Toolkit

let bench_heap =
  Test.make ~name:"heap insert+pop x1000"
    (Staged.stage (fun () ->
         let g = Rng.create 1 in
         let h = Heap.create () in
         for _ = 1 to 1000 do
           ignore (Heap.insert h ~key:(Rng.float g) ())
         done;
         while Heap.pop h <> None do
           ()
         done))

let bench_engine =
  Test.make ~name:"engine 1000 events"
    (Staged.stage (fun () ->
         let e = Engine.create () in
         let g = Rng.create 2 in
         for _ = 1 to 1000 do
           ignore (Engine.schedule e ~after:(Rng.float g) (fun _ -> ()))
         done;
         Engine.run e))

let bench_engine_probed =
  Test.make ~name:"obs overhead: engine 1000 events, probes attached"
    (Staged.stage (fun () ->
         let e = Engine.create () in
         let obs = Softstate_obs.Obs.create () in
         Softstate_obs.Engine_probe.attach ~obs e;
         let g = Rng.create 2 in
         for _ = 1 to 1000 do
           ignore (Engine.schedule e ~after:(Rng.float g) (fun _ -> ()))
         done;
         Engine.run e))

let bench_md5 =
  let payload = String.make 1024 'x' in
  Test.make ~name:"md5 1 KiB"
    (Staged.stage (fun () -> ignore (Sstp.Md5.digest_string payload)))

let bench_stride =
  Test.make ~name:"stride select+charge x1000"
    (Staged.stage (fun () ->
         let s = Stride.create () in
         let a = Stride.add_flow s ~weight:1.0 in
         let b = Stride.add_flow s ~weight:3.0 in
         Stride.set_backlogged s a true;
         Stride.set_backlogged s b true;
         for _ = 1 to 1000 do
           match Stride.select s with
           | Some f -> Stride.charge s f 1.0
           | None -> ()
         done))

let bench_lottery =
  Test.make ~name:"lottery select+charge x1000"
    (Staged.stage (fun () ->
         let s = Lottery.create ~rng:(Rng.create 3) in
         let a = Lottery.add_flow s ~weight:1.0 in
         let b = Lottery.add_flow s ~weight:3.0 in
         Lottery.set_backlogged s a true;
         Lottery.set_backlogged s b true;
         for _ = 1 to 1000 do
           match Lottery.select s with
           | Some f -> Lottery.charge s f 1.0
           | None -> ()
         done))

let bench_namespace =
  Test.make ~name:"namespace update+root digest (100 leaves)"
    (Staged.stage
       (let ns = Sstp.Namespace.create () in
        for i = 0 to 99 do
          ignore
            (Sstp.Namespace.put ns
               ~path:(Sstp.Path.of_string (Printf.sprintf "g%d/k%d" (i mod 10) i))
               ~payload:"v")
        done;
        let flip = ref 0 in
        fun () ->
          incr flip;
          ignore
            (Sstp.Namespace.put ns
               ~path:(Sstp.Path.of_string "g3/k33")
               ~payload:(string_of_int !flip));
          ignore (Sstp.Namespace.root_digest ns)))

let bench_wire =
  let env =
    { Sstp.Wire.seq = 7; sent_at = 1.0;
      msg =
        Sstp.Wire.Data
          { path = "a/b/c"; version = 3; payload = String.make 200 'p';
            meta = [] } }
  in
  Test.make ~name:"wire encode+decode Data(200B)"
    (Staged.stage (fun () -> ignore (Sstp.Wire.decode (Sstp.Wire.encode env))))

let bench_open_loop_sim =
  Test.make ~name:"open-loop sim 100 s"
    (Staged.stage (fun () ->
         ignore
           (Softstate_core.Experiment.run
              { Softstate_core.Experiment.default with
                Softstate_core.Experiment.duration = 100.0 })))

let all_tests =
  Test.make_grouped ~name:"softstate"
    [ bench_heap; bench_engine; bench_engine_probed; bench_md5; bench_stride;
      bench_lottery; bench_namespace; bench_wire; bench_open_loop_sim ]

let run () =
  Tables.header "Micro-benchmarks (bechamel)";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances all_tests in
  let ols =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
          Printf.printf "%-44s %12.1f ns/run\n" name est
      | Some _ | None -> Printf.printf "%-44s %12s\n" name "-")
    ols

(* Aligned-table printing for the experiment harness. *)

(* Domain count for parallelisable sweeps; set by main.exe --jobs N
   (0 = all recommended domains). *)
let jobs = ref 1

let hrule width = print_endline (String.make width '-')

let header title =
  print_newline ();
  print_endline (String.make 74 '=');
  print_endline title;
  print_endline (String.make 74 '=')

let subheader s =
  print_newline ();
  print_endline s;
  hrule (String.length s)

(* Print a table: first column label + one column per series. *)
let series ~x_label ~x_format ~columns ~rows () =
  Printf.printf "%10s" x_label;
  List.iter (fun c -> Printf.printf "  %10s" c) columns;
  print_newline ();
  hrule (10 + (12 * List.length columns));
  List.iter
    (fun (x, values) ->
      Printf.printf "%10s" (x_format x);
      List.iter
        (fun v ->
          if Float.is_nan v then Printf.printf "  %10s" "-"
          else Printf.printf "  %10.4f" v)
        values;
      print_newline ())
    rows

let pct x = Printf.sprintf "%.0f%%" (100.0 *. x)
let kbps x = Printf.sprintf "%.1f" x
let seconds x = Printf.sprintf "%.0fs" x

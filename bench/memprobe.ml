(* Shared live-heap sampling for the bench executables.

   Convention: heap figures are OCaml *words* of live data reported by
   [Gc.stat] after a forced collection; multiply by [words_to_bytes]
   only at presentation time, so JSON baselines stay comparable across
   32/64-bit word sizes (they are all 64-bit in practice, but the unit
   is part of the committed baseline's name: [*_words]). *)

(* Authoritative measurement: full compaction first, so free-list
   fragmentation and unswept garbage cannot inflate the figure. Use
   for before/after deltas where the cost (O(heap) and a heap copy) is
   paid a handful of times. *)
let live_words () =
  Gc.compact ();
  (Gc.stat ()).Gc.live_words

(* Periodic in-run sampling: a full major cycle without compaction.
   Cheaper on large heaps and does not move blocks, at the price of a
   slightly noisier figure (floats within a major-GC round of the
   compacted value). Good enough for slope-over-time gates, which are
   insensitive to a constant offset. *)
let live_words_major () =
  Gc.full_major ();
  (Gc.stat ()).Gc.live_words

let words_to_bytes w = w * (Sys.word_size / 8)

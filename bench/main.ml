(* Experiment harness: regenerates every table and figure of the
   paper's evaluation, the cross-validation studies, the ablations,
   and the SSTP benchmarks.

     dune exec bench/main.exe              -- run everything
     dune exec bench/main.exe -- --exp fig9
     dune exec bench/main.exe -- --jobs 4 --exp fig5
     dune exec bench/main.exe -- --list

   Experiment ids match DESIGN.md section 2. --jobs N fans the
   parallelisable sweeps across N domains (0 = all recommended);
   results are identical for every job count. *)

let experiments =
  [
    ("table1", "Table 1: state-change probabilities", Analytic.table1);
    ("fig3", "Figure 3: analytic consistency vs loss", Analytic.fig3);
    ("fig4", "Figure 4: redundant bandwidth vs loss", Analytic.fig4);
    ("fig5", "Figure 5: two-queue consistency vs mu_hot", Sims.fig5);
    ("fig6", "Figure 6: receive latency vs cold/hot", Sims.fig6);
    ("fig8", "Figure 8: consistency vs time under feedback", Sims.fig8);
    ("fig9", "Figure 9: consistency vs feedback share", Sims.fig9);
    ("fig10", "Figure 10: consistency vs hot share (10% loss)", Sims.fig10);
    ("fig11", "Figure 11: the knee across loss rates", Sims.fig11);
    ("validate", "Simulation vs closed-form cross-check", Sims.validate);
    ("burst", "Loss-pattern insensitivity (Gilbert-Elliott)", Sims.burst);
    ("ablate-sched", "Ablation: proportional-share mechanism", Sims.ablate_sched);
    ("ablate-death", "Ablation: death models", Sims.ablate_death);
    ("multicast", "Multicast: NACK implosion vs suppression", Sims.multicast);
    ("timers", "Soft-state expiry timers (scalable timers)", Sims.timers);
    ("sstp-sync", "SSTP: cold-start sync vs flat baseline", Sstp_bench.sync);
    ("sstp-repair", "SSTP: single-leaf repair vs store size", Sstp_bench.repair);
    ("sstp-continuum", "SSTP: the reliability continuum", Sstp_bench.continuum);
    ("sstp-group", "SSTP: multicast group scaling", Sstp_bench.group);
    ("obs-smoke", "Observability: traced-run throughput", Obs_smoke.run);
    ("fuzz-smoke", "Scenario fuzzer: pinned-seed oracle pass", Fuzz_smoke.run);
    ("perf", "Performance suite: calendar + parallel sweep", Perf.run);
    ("soak", "Bounded-memory soak: 10^6 keys, heap-flatness gate", Soak.run);
    ("micro", "Bechamel micro-benchmarks", Micro.run);
  ]

let list_experiments () =
  print_endline "available experiments:";
  List.iter (fun (id, desc, _) -> Printf.printf "  %-16s %s\n" id desc)
    experiments

let run_one id =
  match List.find_opt (fun (id', _, _) -> id' = id) experiments with
  | Some (_, _, f) -> f ()
  | None ->
      Printf.eprintf "unknown experiment %S\n" id;
      list_experiments ();
      exit 1

let usage () =
  prerr_endline "usage: main.exe [--jobs N] [--list | --exp <id> [<id> ...]]";
  exit 1

let () =
  let args = Array.to_list Sys.argv in
  (* peel off a leading --jobs N (applies to every experiment run) *)
  let args =
    match args with
    | argv0 :: "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some jobs ->
            Tables.jobs := jobs;
            Perf.jobs :=
              (if jobs <= 0 then Softstate_sim.Parallel.recommended_jobs ()
               else jobs);
            argv0 :: rest
        | None -> usage ())
    | _ -> args
  in
  match args with
  | _ :: "--list" :: _ -> list_experiments ()
  | _ :: "--exp" :: ids when ids <> [] -> List.iter run_one ids
  | [ _ ] ->
      print_endline
        "softstate reproduction harness - regenerating all paper artefacts";
      print_endline "(run with --list to see individual experiment ids)";
      List.iter (fun (_, _, f) -> f ()) experiments
  | _ -> usage ()

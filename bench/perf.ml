(* Performance proof suite (BENCH_perf.json).

   Three measurements back the calendar overhaul and the domain
   fan-out:
   - timer-storm: the soft-state calendar access pattern (insert a
     refresh timer, cancel most before they fire, pop the rest) on the
     current Softstate_util.Heap versus a verbatim copy of the seed's
     boxed-slot heap, measured in the same process — so the reported
     speedup is machine-independent and CI can gate on it;
   - an end-to-end fig5-style experiment run (simulated seconds and
     engine events per wall second);
   - a 16-replication sweep with --jobs 1 versus --jobs 4 (wall
     clock; on a single-core container the two are expected to tie).

   Quick mode (PERF_QUICK=1) shrinks the workloads for CI and checks
   the measured timer-storm speedup against the committed
   BENCH_perf.json baseline, failing on a >30% regression. *)

module Rng = Softstate_util.Rng
module Heap = Softstate_util.Heap
module E = Softstate_core.Experiment
module Engine = Softstate_sim.Engine
module Json = Softstate_obs.Json
module Net = Softstate_net

(* The seed repository's heap, kept verbatim as the baseline: boxed
   ['a slot option] cells, eager O(log n) removal. *)
module Ref_heap = struct
  type handle = { mutable index : int }
  type 'a slot = { key : float; seq : int; value : 'a; handle : handle }

  type 'a t = {
    mutable slots : 'a slot option array;
    mutable size : int;
    mutable next_seq : int;
  }

  let create ?(initial_capacity = 64) () =
    { slots = Array.make (max 1 initial_capacity) None; size = 0;
      next_seq = 0 }

  let slot t i = match t.slots.(i) with Some s -> s | None -> assert false
  let precedes a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

  let set t i s =
    t.slots.(i) <- Some s;
    s.handle.index <- i

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      let si = slot t i and sp = slot t parent in
      if precedes si sp then begin
        set t parent si;
        set t i sp;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let left = (2 * i) + 1 and right = (2 * i) + 2 in
    let smallest = ref i in
    if left < t.size && precedes (slot t left) (slot t !smallest) then
      smallest := left;
    if right < t.size && precedes (slot t right) (slot t !smallest) then
      smallest := right;
    if !smallest <> i then begin
      let si = slot t i and ss = slot t !smallest in
      set t !smallest si;
      set t i ss;
      sift_down t !smallest
    end

  let grow t =
    let slots = Array.make (2 * Array.length t.slots) None in
    Array.blit t.slots 0 slots 0 t.size;
    t.slots <- slots

  let insert t ~key value =
    if t.size = Array.length t.slots then grow t;
    let handle = { index = t.size } in
    let s = { key; seq = t.next_seq; value; handle } in
    t.next_seq <- t.next_seq + 1;
    t.slots.(t.size) <- Some s;
    t.size <- t.size + 1;
    sift_up t (t.size - 1);
    handle

  let remove_at t i =
    let removed = slot t i in
    removed.handle.index <- -1;
    t.size <- t.size - 1;
    if i <> t.size then begin
      let last = slot t t.size in
      set t i last;
      t.slots.(t.size) <- None;
      sift_up t i;
      sift_down t i
    end
    else t.slots.(t.size) <- None;
    removed

  let pop t =
    if t.size = 0 then None
    else
      let s = remove_at t 0 in
      Some (s.key, s.value)

  let remove t h =
    if h.index < 0 then false
    else begin
      ignore (remove_at t h.index);
      true
    end
end

let quick () = Sys.getenv_opt "PERF_QUICK" <> None
let wall () = Unix.gettimeofday ()

let timed f =
  let t0 = wall () in
  let r = f () in
  (r, wall () -. t0)

(* The timer-storm pattern, parameterised over a heap implementation:
   the soft-state expiry-timer access sequence. Each of [resident]
   live records keeps one pending expiry timer ~20-40 s out. Every
   round, [batch] announcements arrive: each cancels the target
   record's pending timer and schedules a replacement further out —
   cancel + reinsert of far-future deadlines is the dominant calendar
   traffic. Then the clock advances 1 s and the (much rarer) genuine
   expiries are popped, each re-arming its record. Counts one op per
   insert, cancel and pop; both heaps see the identical RNG-driven
   sequence, so op counts must agree. *)
let storm ~rounds ~batch ~resident ~insert ~cancel ~pop =
  let g = Rng.create 42 in
  let now = ref 0.0 in
  let ops = ref 0 in
  let deadline () = !now +. 20.0 +. (20.0 *. Rng.float g) in
  let pending = Array.make resident None in
  for i = 0 to resident - 1 do
    pending.(i) <- Some (insert (deadline ()) i)
  done;
  for _ = 1 to rounds do
    (* announcements: refresh a random record's expiry timer *)
    for _ = 1 to batch do
      let i = Rng.int g resident in
      (match pending.(i) with
      | Some h -> cancel h; incr ops
      | None -> ());
      pending.(i) <- Some (insert (deadline ()) i);
      incr ops
    done;
    now := !now +. 1.0;
    (* expiries: the record dies and is re-announced afresh *)
    let rec drain () =
      match pop !now with
      | Some i ->
          incr ops;
          pending.(i) <- Some (insert (deadline ()) i);
          incr ops;
          drain ()
      | None -> ()
    in
    drain ()
  done;
  !ops

let storm_new ~rounds ~batch ~resident =
  let h = Heap.create () in
  storm ~rounds ~batch ~resident
    ~insert:(fun key v -> Heap.insert h ~key v)
    ~cancel:(fun handle -> ignore (Heap.remove h handle))
    ~pop:(fun limit ->
      match Heap.min_key h with
      | Some k when k <= limit -> (
          match Heap.pop h with Some (_, v) -> Some v | None -> None)
      | _ -> None)

let storm_ref ~rounds ~batch ~resident =
  let h = Ref_heap.create () in
  storm ~rounds ~batch ~resident
    ~insert:(fun key v -> Ref_heap.insert h ~key v)
    ~cancel:(fun handle -> ignore (Ref_heap.remove h handle))
    ~pop:(fun limit ->
      match h.Ref_heap.size with
      | 0 -> None
      | _ ->
          let s = Ref_heap.slot h 0 in
          if s.Ref_heap.key <= limit then
            match Ref_heap.pop h with Some (_, v) -> Some v | None -> None
          else None)

(* Topology fan-out: flood packets down a complete k-ary multicast
   tree with a subscriber at every non-root node — the hop-by-hop
   replication path that dominates large-group runs. Every packet
   crosses every cable once and is delivered to every receiver, so
   deliveries/s measures the per-hop overlay machinery. *)
let fanout_storm ~arity ~depth ~packets =
  let e = Engine.create () in
  let topo =
    Net.Topology.kary_tree ~engine:e ~rng:(Rng.create 17)
      ~rate_bps:1_000_000_000.0 ~arity ~depth ()
  in
  let tr = Net.Topology.transport topo in
  let sent = ref 0 in
  let delivered = ref 0 in
  let f =
    tr.Net.Transport.fanout ~rate_bps:1_000_000_000.0 ~label:"fan"
      ~rng:(Rng.create 18)
      ~fetch:(fun () ->
        if !sent >= packets then None
        else begin
          incr sent;
          Some (Net.Packet.make ~size_bits:1_000 !sent)
        end)
      ()
  in
  let receivers = Net.Topology.node_count topo - 1 in
  for _ = 1 to receivers do
    ignore
      (f.Net.Transport.f_subscribe ~loss:Net.Loss.never (fun ~now:_ _ ->
           incr delivered))
  done;
  f.Net.Transport.f_kick ();
  Engine.run e;
  assert (!delivered = packets * receivers);
  (receivers, !delivered)

(* Engine-level storm: periodic refresh timers on the wheel plus
   one-shot deaths on the heap, most cancelled before firing. *)
let engine_storm ~records =
  let e = Engine.create () in
  let g = Rng.create 7 in
  for _ = 1 to records do
    let stop =
      Engine.every e ~period:(5.0 +. Rng.float g) (fun _ -> ())
    in
    let lifetime = 20.0 +. (40.0 *. Rng.float g) in
    ignore
      (Engine.schedule e ~after:lifetime (fun _ -> ignore (stop ())))
  done;
  Engine.run ~until:120.0 e;
  Engine.events_fired e

let fig5_config =
  { E.default with
    E.duration = 4000.0;
    loss = E.Bernoulli 0.3;
    protocol = E.Two_queue { mu_hot_kbps = 20.0; mu_cold_kbps = 25.0 } }

let jobs = ref 4

(* The committed (full-mode) BENCH_perf.json also records the storm
   speedup at quick scale, so CI's quick run gates against a baseline
   of the same workload size. *)
let regression_check ~speedup ~words_per_node =
  match open_in "BENCH_perf.json" with
  | exception Sys_error _ ->
      print_endline "no committed BENCH_perf.json baseline; skipping gate"
  | ic ->
      let line = input_line ic in
      close_in ic;
      (match Json.parse_flat line with
      | Error _ -> print_endline "unparseable BENCH_perf.json; skipping gate"
      | Ok fields -> (
          (match Json.member "storm_speedup_quick" fields with
          | Some (Json.Number baseline) when baseline > 0.0 ->
              let floor = 0.7 *. baseline in
              Printf.printf
                "regression gate: speedup %.2fx vs baseline %.2fx (floor %.2fx)\n"
                speedup baseline floor;
              if speedup < floor then begin
                prerr_endline
                  "FAIL: timer-storm speedup regressed >30% vs baseline";
                exit 1
              end
          | _ ->
              print_endline "no storm_speedup_quick in baseline; skipping gate");
          (* memory gate: live words per node of the flat substrate at
             the quick workload. The build is seed-deterministic, so
             any growth is a real footprint regression, not noise. *)
          match Json.member "large_topo_words_per_node_quick" fields with
          | Some (Json.Number baseline) when baseline > 0.0 ->
              let ceiling = 1.3 *. baseline in
              Printf.printf
                "memory gate: %.1f words/node vs baseline %.1f (ceiling %.1f)\n"
                words_per_node baseline ceiling;
              if words_per_node > ceiling then begin
                prerr_endline
                  "FAIL: flat-topology words/node regressed >30% vs baseline";
                exit 1
              end
          | _ ->
              print_endline
                "no large_topo_words_per_node_quick in baseline; skipping gate"))

let run () =
  Tables.header "Performance suite (BENCH_perf.json)";
  let q = quick () in
  let rounds = if q then 60 else 400 in
  let batch = if q then 2_000 else 5_000 in
  Printf.printf "domains available: %d   jobs: %d   quick: %b\n"
    (Softstate_sim.Parallel.recommended_jobs ())
    !jobs q;

  (* 1. timer-storm micro benchmark, seed heap vs current heap *)
  let resident = if q then 50_000 else 200_000 in
  ignore (storm_ref ~rounds:4 ~batch:500 ~resident:2_000);
  ignore (storm_new ~rounds:4 ~batch:500 ~resident:2_000);
  let measure ~rounds ~batch ~resident =
    let ref_ops, ref_s = timed (fun () -> storm_ref ~rounds ~batch ~resident) in
    let new_ops, new_s = timed (fun () -> storm_new ~rounds ~batch ~resident) in
    assert (ref_ops = new_ops);
    let ref_rate = float_of_int ref_ops /. ref_s in
    let new_rate = float_of_int new_ops /. new_s in
    (ref_ops, ref_s, ref_rate, new_s, new_rate, new_rate /. ref_rate)
  in
  let ops, ref_s, ref_rate, new_s, new_rate, speedup =
    measure ~rounds ~batch ~resident
  in
  Printf.printf "timer-storm  seed heap  %10.0f ops/s  (%.3f s, %d ops)\n"
    ref_rate ref_s ops;
  Printf.printf "timer-storm  new heap   %10.0f ops/s  (%.3f s, %d ops)\n"
    new_rate new_s ops;
  Printf.printf "timer-storm  speedup    %10.2fx\n" speedup;
  (* quick-scale speedup: measured in full mode too, so the committed
     baseline carries the number CI's quick run gates against *)
  let speedup_quick =
    if q then speedup
    else begin
      let _, _, _, _, _, s =
        measure ~rounds:60 ~batch:2_000 ~resident:50_000
      in
      Printf.printf "timer-storm  speedup    %10.2fx (quick scale, for the CI gate)\n" s;
      s
    end
  in

  (* 2. engine timer storm (wheel periodics + heap one-shots) *)
  let records = if q then 2_000 else 10_000 in
  let fired, eng_s = timed (fun () -> engine_storm ~records) in
  let eng_rate = float_of_int fired /. eng_s in
  Printf.printf "engine storm %10.0f events/s  (%d events, %.3f s)\n"
    eng_rate fired eng_s;

  (* 3. end-to-end fig5-style run *)
  let cfg =
    if q then { fig5_config with E.duration = 800.0 } else fig5_config
  in
  let r, e2e_s = timed (fun () -> E.run cfg) in
  Printf.printf "fig5-style   %.0f sim-s in %.3f wall-s (%.0f sim-s/s, consist %.4f)\n"
    cfg.E.duration e2e_s
    (cfg.E.duration /. e2e_s)
    r.E.avg_consistency;

  (* 4. parallel replication sweep: 16 replications, jobs 1 vs N *)
  let reps = 16 in
  let sweep_cfg = { cfg with E.duration = (if q then 400.0 else 1500.0) } in
  let s1, wall1 =
    timed (fun () -> fst (E.run_many ~jobs:1 ~replications:reps sweep_cfg))
  in
  let domain_stats = ref None in
  let sn, walln =
    timed (fun () ->
        fst
          (E.run_many ~jobs:!jobs ~replications:reps
             ~domain_report:(fun s -> domain_stats := Some s)
             sweep_cfg))
  in
  let par_speedup = wall1 /. walln in
  Printf.printf "sweep        jobs 1: %.3f s   jobs %d: %.3f s   speedup %.2fx\n"
    wall1 !jobs walln par_speedup;
  (* per-domain attribution: a disappointing speedup is either skew
     (one domain's wall dwarfs the rest, balance -> 1) or a shared
     bottleneck (balanced domains that are all slow) *)
  let module PS = Softstate_sim.Parallel.Stats in
  (match !domain_stats with
  | None -> ()
  | Some st ->
      Array.iter
        (fun (d : PS.domain) ->
          Printf.printf "sweep        domain %d: %2d tasks  %.3f s\n"
            d.PS.index d.PS.tasks d.PS.wall_s)
        st.PS.domains;
      Printf.printf
        "sweep        balance %.2f of %d (busy-sum / slowest; %d = even)\n"
        (PS.balance st) st.PS.jobs st.PS.jobs);
  (* polymorphic [compare] treats nan as equal to itself *)
  if compare s1 sn <> 0 then begin
    prerr_endline "FAIL: summaries differ between jobs 1 and jobs N";
    exit 1
  end;
  Printf.printf "sweep        consistency %.4f +/- %.4f (identical at any job count)\n"
    s1.E.consistency_mean s1.E.consistency_ci95;

  (* 5. topology fan-out: k-ary multicast tree, >= 1k receivers *)
  let fan_arity = 4 and fan_depth = 5 in
  let fan_packets = if q then 100 else 500 in
  let (fan_receivers, fan_deliveries), fan_s =
    timed (fun () -> fanout_storm ~arity:fan_arity ~depth:fan_depth
                       ~packets:fan_packets)
  in
  let fan_rate = float_of_int fan_deliveries /. fan_s in
  Printf.printf
    "tree fan-out %10.0f deliveries/s  (%d-ary depth %d, %d receivers, %d pkts, %.3f s)\n"
    fan_rate fan_arity fan_depth fan_receivers fan_packets fan_s;

  (* 6. large-topo: the flat struct-of-arrays substrate at 10^5 nodes —
     build time, live heap (Gc-measured) and gossip contact throughput
     on a sparse random graph and a deep binary tree. Edge probability
     keeps the mean degree at 4 across scales. *)
  let module Flat = Net.Flat_topology in
  let module G = Softstate_core.Gossip in
  let live_words = Memprobe.live_words in
  let lt_measure build =
    let before = live_words () in
    let (flat : Flat.t), build_s = timed build in
    let delta = live_words () - before in
    let r, run_s =
      timed (fun () ->
          G.run
            { G.default with G.seed = 9; fanout = 2; max_rounds = 200 }
            (G.Mesh flat))
    in
    (flat, build_s, delta, r, run_s)
  in
  let lt_nodes = if q then 20_000 else 100_000 in
  let lt_prob = 4.0 /. float_of_int lt_nodes in
  let lt_random () =
    Flat.random ~rng:(Rng.create 5) ~nodes:lt_nodes ~edge_prob:lt_prob ()
  in
  let lt, lt_build_s, lt_live, lt_r, lt_run_s = lt_measure lt_random in
  let lt_wpn = float_of_int lt_live /. float_of_int lt_nodes in
  let lt_rate = float_of_int lt_r.G.transmissions /. lt_run_s in
  Printf.printf
    "large-topo   random:%d:%g  %d cables  build %.3f s  %.1f words/node\n"
    lt_nodes lt_prob (Flat.cable_count lt) lt_build_s lt_wpn;
  Printf.printf
    "large-topo   gossip %10.0f contacts/s  (%d rounds, %d infected, %.3f s)\n"
    lt_rate lt_r.G.rounds lt_r.G.infected lt_run_s;
  let tree_depth = if q then 13 else 16 in
  let tree, tree_build_s, tree_live, tree_r, tree_run_s =
    lt_measure (fun () -> Flat.kary_tree ~arity:2 ~depth:tree_depth ())
  in
  let tree_nodes = Flat.node_count tree in
  let tree_rate = float_of_int tree_r.G.transmissions /. tree_run_s in
  Printf.printf
    "large-topo   tree:2:%d  %d nodes  build %.3f s  %.1f words/node\n"
    tree_depth tree_nodes tree_build_s
    (float_of_int tree_live /. float_of_int tree_nodes);
  Printf.printf
    "large-topo   gossip %10.0f contacts/s  (%d rounds, %d infected, %.3f s)\n"
    tree_rate tree_r.G.rounds tree_r.G.infected tree_run_s;
  (* quick-scale words/node: measured in full mode too, so the
     committed baseline carries the number CI's quick run gates
     against (the build is seed-deterministic, so the full-mode and
     quick-mode measurements of this workload agree) *)
  let lt_wpn_quick =
    if q then lt_wpn
    else begin
      let before = live_words () in
      let flat = Flat.random ~rng:(Rng.create 5) ~nodes:20_000 ~edge_prob:(4.0 /. 20_000.0) () in
      let delta = live_words () - before in
      ignore (Flat.node_count flat);
      float_of_int delta /. 20_000.0
    end
  in

  if q then regression_check ~speedup ~words_per_node:lt_wpn_quick;

  let out = if q then "BENCH_perf_quick.json" else "BENCH_perf.json" in
  let oc = open_out out in
  output_string oc
    (Json.obj
       [ ("experiment", Json.string "perf");
         ("quick", Json.int (if q then 1 else 0));
         ("domains_available",
          Json.int (Softstate_sim.Parallel.recommended_jobs ()));
         ("storm_ops", Json.int ops);
         ("storm_ref_ops_per_s", Json.float ref_rate);
         ("storm_ops_per_s", Json.float new_rate);
         ("storm_speedup", Json.float speedup);
         ("storm_speedup_quick", Json.float speedup_quick);
         ("engine_storm_events", Json.int fired);
         ("engine_storm_events_per_s", Json.float eng_rate);
         ("fig5_sim_s", Json.float cfg.E.duration);
         ("fig5_wall_s", Json.float e2e_s);
         ("fig5_sim_s_per_wall_s", Json.float (cfg.E.duration /. e2e_s));
         ("fanout_tree_arity", Json.int fan_arity);
         ("fanout_tree_depth", Json.int fan_depth);
         ("fanout_receivers", Json.int fan_receivers);
         ("fanout_packets", Json.int fan_packets);
         ("fanout_deliveries", Json.int fan_deliveries);
         ("fanout_wall_s", Json.float fan_s);
         ("fanout_deliveries_per_s", Json.float fan_rate);
         ("sweep_replications", Json.int reps);
         ("sweep_jobs", Json.int !jobs);
         ("sweep_wall_jobs1_s", Json.float wall1);
         ("sweep_wall_jobsN_s", Json.float walln);
         ("sweep_speedup", Json.float par_speedup);
         ("sweep_domain_tasks",
          Json.list
            (match !domain_stats with
            | None -> []
            | Some st ->
                Array.to_list
                  (Array.map (fun (d : PS.domain) -> Json.int d.PS.tasks)
                     st.PS.domains)));
         ("sweep_domain_wall_s",
          Json.list
            (match !domain_stats with
            | None -> []
            | Some st ->
                Array.to_list
                  (Array.map (fun (d : PS.domain) -> Json.float d.PS.wall_s)
                     st.PS.domains)));
         ("sweep_balance",
          Json.float
            (match !domain_stats with
            | None -> nan
            | Some st -> PS.balance st));
         ("sweep_mode",
          Json.string
            (match !domain_stats with
            | None -> "unknown"
            | Some st -> PS.mode_name st.PS.mode));
         ("large_topo_nodes", Json.int lt_nodes);
         ("large_topo_edge_prob", Json.float lt_prob);
         ("large_topo_cables", Json.int (Flat.cable_count lt));
         ("large_topo_build_s", Json.float lt_build_s);
         ("large_topo_live_words", Json.int lt_live);
         ("large_topo_words_per_node", Json.float lt_wpn);
         ("large_topo_words_per_node_quick", Json.float lt_wpn_quick);
         ("large_topo_gossip_rounds", Json.int lt_r.G.rounds);
         ("large_topo_gossip_contacts", Json.int lt_r.G.transmissions);
         ("large_topo_contacts_per_s", Json.float lt_rate);
         ("tree_topo_depth", Json.int tree_depth);
         ("tree_topo_nodes", Json.int tree_nodes);
         ("tree_topo_build_s", Json.float tree_build_s);
         ("tree_topo_live_words", Json.int tree_live);
         ("tree_topo_contacts_per_s", Json.float tree_rate) ]);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" out

(* Observability smoke benchmark: run the same lossy two-queue
   experiment bare (no obs context), with an obs context whose trace
   sink is disabled, and with tracing into a counting sink; report the
   two overheads and record the numbers to BENCH_obs.json for trend
   tracking.

   The disabled-sink row is the one the obs fast path is judged on:
   every instrumented component hoists the "any sink attached?" check
   into a [traced] flag at creation, so an untraced run must skip
   event construction entirely and stay within ~5% of the bare run.
   The counting-sink row is the honest price of tracing when it is
   switched on (event construction + sink dispatch per event).

   Timing is best-of-3 over a 6000 s simulation, with the three
   configurations interleaved round-robin: a single short run is
   dominated by allocator and scheduler noise (the previously recorded
   15% "overhead" mostly was), and timing the configurations in blocks
   lets progressive GC heap growth bias whichever runs last. *)

module E = Softstate_core.Experiment
module Obs = Softstate_obs.Obs
module Trace = Softstate_obs.Trace
module Json = Softstate_obs.Json

let sim_duration = 6000.0

let config ~obs =
  { E.default with
    E.duration = sim_duration;
    loss = E.Bernoulli 0.3;
    protocol = E.Two_queue { mu_hot_kbps = 20.0; mu_cold_kbps = 25.0 };
    obs }

let run () =
  Tables.header "Observability smoke (BENCH_obs.json)";
  let bare_run () = E.run (config ~obs:None) in
  (* obs context attached, but no trace sink: the fast-path case *)
  let null_run () = E.run (config ~obs:(Some (Obs.create ()))) in
  let events = ref 0 in
  let counting =
    Trace.filter
      (fun _ ->
        incr events;
        false)
      Trace.null
  in
  let traced_run () =
    events := 0;
    let obs = Obs.create ~trace:counting () in
    E.run (config ~obs:(Some obs))
  in
  (* warm-up every configuration: fault in code, grow the GC heap *)
  ignore (bare_run ());
  ignore (null_run ());
  let r = traced_run () in
  let base_s = ref infinity and null_s = ref infinity
  and traced_s = ref infinity in
  let time best f =
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  in
  for _round = 1 to 3 do
    time base_s bare_run;
    time null_s null_run;
    time traced_s traced_run
  done;
  let base_s = !base_s and null_s = !null_s and traced_s = !traced_s in
  let events_per_s =
    if traced_s > 0.0 then float_of_int !events /. traced_s else 0.0
  in
  let over x = if base_s > 0.0 then (x -. base_s) /. base_s else 0.0 in
  let null_overhead = over null_s and traced_overhead = over traced_s in
  Printf.printf "bare run (no obs)       %.3f s (best of 3)\n" base_s;
  Printf.printf "obs, sink disabled      %.3f s (overhead %+.1f%%)\n" null_s
    (100.0 *. null_overhead);
  Printf.printf "obs, counting sink      %.3f s (overhead %+.1f%%)\n" traced_s
    (100.0 *. traced_overhead);
  Printf.printf "trace events emitted    %d (%.0f events/s wall)\n" !events
    events_per_s;
  Printf.printf "final consistency       %.4f\n" r.E.final_consistency;
  let oc = open_out "BENCH_obs.json" in
  output_string oc
    (Json.obj
       [ ("experiment", Json.string "obs-smoke");
         ("sim_duration_s", Json.float sim_duration);
         ("untraced_wall_s", Json.float base_s);
         ("null_sink_wall_s", Json.float null_s);
         ("traced_wall_s", Json.float traced_s);
         ("trace_events", Json.int !events);
         ("events_per_wall_s", Json.float events_per_s);
         ("untraced_overhead", Json.float null_overhead);
         ("tracing_overhead", Json.float traced_overhead) ]);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_obs.json";
  (* CI gate (OBS_GATE=1): an attached-but-untraced obs context must
     stay within +3% of the bare run — the contract every new emit
     site is written against (hoist the [traced] check, build no
     event). Local runs are not gated: a busy laptop produces noise
     this threshold would misread. *)
  if Sys.getenv_opt "OBS_GATE" <> None && null_overhead > 0.03 then begin
    Printf.eprintf
      "FAIL: attached-but-untraced overhead %+.1f%% exceeds the +3%% gate\n"
      (100.0 *. null_overhead);
    exit 1
  end

(* Observability smoke benchmark: run the same lossy two-queue
   experiment with tracing off and with tracing into a counting sink,
   report event throughput and the tracing overhead, and record the
   numbers to BENCH_obs.json for trend tracking. *)

module E = Softstate_core.Experiment
module Obs = Softstate_obs.Obs
module Trace = Softstate_obs.Trace
module Json = Softstate_obs.Json

let config ~obs =
  { E.default with
    E.duration = 500.0;
    loss = E.Bernoulli 0.3;
    protocol = E.Two_queue { mu_hot_kbps = 20.0; mu_cold_kbps = 25.0 };
    obs }

let timed f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

let run () =
  Tables.header "Observability smoke (BENCH_obs.json)";
  let _, base_s = timed (fun () -> E.run (config ~obs:None)) in
  let events = ref 0 in
  let counting =
    Trace.filter
      (fun _ ->
        incr events;
        false)
      Trace.null
  in
  let obs = Obs.create ~trace:counting () in
  let r, traced_s = timed (fun () -> E.run (config ~obs:(Some obs))) in
  let events_per_s =
    if traced_s > 0.0 then float_of_int !events /. traced_s else 0.0
  in
  let overhead = if base_s > 0.0 then (traced_s -. base_s) /. base_s else 0.0 in
  Printf.printf "untraced run            %.3f s\n" base_s;
  Printf.printf "traced run              %.3f s (overhead %+.1f%%)\n" traced_s
    (100.0 *. overhead);
  Printf.printf "trace events emitted    %d (%.0f events/s wall)\n" !events
    events_per_s;
  Printf.printf "final consistency       %.4f\n" r.E.final_consistency;
  let oc = open_out "BENCH_obs.json" in
  output_string oc
    (Json.obj
       [ ("experiment", Json.string "obs-smoke");
         ("sim_duration_s", Json.float 500.0);
         ("untraced_wall_s", Json.float base_s);
         ("traced_wall_s", Json.float traced_s);
         ("trace_events", Json.int !events);
         ("events_per_wall_s", Json.float events_per_s);
         ("tracing_overhead", Json.float overhead) ]);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_obs.json"

(* Bounded-memory soak (BENCH_soak.json).

   Drives a bare Base instance — no protocol queueing, announcements
   delivered directly — with a fixed-lifetime workload tuned for a
   steady-state live set of 10^6 keys under the wheel-based expiry
   path, then gates on live-heap *flatness*: after warmup, a
   least-squares fit of Gc live words against simulated time must have
   negligible slope. Any per-key structure that leaks (receiver rows,
   wheel timers, seq maps, engine calendar entries) shows up as a
   positive drift over the hours-long measurement window.

   Shape of the run:
   - arrivals: Poisson at [keys/ttl] per second, each record living
     exactly [ttl] seconds, so the live population ramps linearly for
     one ttl and is then stationary at ~[keys];
   - refreshes: once per simulated second, [live/refresh_gap] keys
     drawn uniformly from the live table are re-announced to receiver
     0, giving every key an approximately Poisson refresh process with
     mean interval [refresh_gap]. With [Refresh_wheel {multiple = 3}]
     a silent key's receiver copy expires after ~3 estimated
     intervals, so both false expiries (live at sender) and stale
     purges (dead at sender) are exercised continuously;
   - sampling: every [sample_period] simulated seconds a full major
     collection runs and [Gc.stat] live words are recorded.

   SOAK_QUICK=1 shrinks the run to ~5*10^4 keys / 15 simulated
   minutes for CI; the flatness gate is scale-free (drift is measured
   as a fraction of the mean heap), so the same tolerance applies. *)

module Rng = Softstate_util.Rng
module Engine = Softstate_sim.Engine
module Base = Softstate_core.Base
module Table = Softstate_core.Table
module Workload = Softstate_core.Workload
module Consistency = Softstate_core.Consistency
module Json = Softstate_obs.Json

let quick () = Sys.getenv_opt "SOAK_QUICK" <> None

(* Simple least squares over (t, words) pairs: slope in words per
   simulated second, plus the mean level for normalising drift. *)
let fit samples =
  let n = float_of_int (List.length samples) in
  let sx = List.fold_left (fun a (t, _) -> a +. t) 0.0 samples in
  let sy = List.fold_left (fun a (_, w) -> a +. float_of_int w) 0.0 samples in
  let xbar = sx /. n and ybar = sy /. n in
  let sxx, sxy =
    List.fold_left
      (fun (sxx, sxy) (t, w) ->
        let dx = t -. xbar in
        (sxx +. (dx *. dx), sxy +. (dx *. (float_of_int w -. ybar))))
      (0.0, 0.0) samples
  in
  let slope = if sxx > 0.0 then sxy /. sxx else 0.0 in
  (slope, ybar)

let drift_tolerance = 0.10

let run () =
  let q = quick () in
  let keys_target = if q then 50_000 else 1_000_000 in
  let ttl = if q then 300.0 else 3600.0 in
  let duration = 3.0 *. ttl in
  (* one ttl of population ramp plus a quarter for the refresh-gap
     EWMAs and the armed-timer fraction to reach their stationary
     distribution *)
  let warmup = 1.25 *. ttl in
  let refresh_gap = if q then 60.0 else 300.0 in
  let sample_period = if q then 10.0 else 300.0 in
  let multiple = 3.0 in

  let engine = Engine.create () in
  let tracker = Consistency.create ~now:0.0 () in
  let workload =
    Workload.create
      ~arrival_rate:(float_of_int keys_target /. ttl)
      ~size_bits:1000 ()
  in
  let base =
    Base.create ~engine ~rng:(Rng.create 77) ~workload
      ~death:(Base.Lifetime_fixed ttl)
      ~expiry:(Base.Refresh_wheel { multiple })
      ~tracker ()
  in
  let seq = ref 0 in
  let announce r =
    incr seq;
    Base.deliver base ~now:(Engine.now engine) ~receiver:0
      (Base.announce_of base ~seq:!seq r)
  in
  Base.set_hooks base ~on_arrival:announce ~on_death:(fun _ -> ());

  let pick_rng = Rng.create 78 in
  let (_ : unit -> bool) =
    Engine.every engine ~period:1.0 (fun _engine ->
         let tbl = Base.table base in
         (* expected live/refresh_gap announcements this second; carry
            the fractional part as a Bernoulli draw so the long-run
            per-key refresh rate is exact *)
         let mean = float_of_int (Table.live_count tbl) /. refresh_gap in
         let whole = int_of_float mean in
         let extra =
           if Rng.float pick_rng < mean -. float_of_int whole then 1 else 0
         in
         for _ = 1 to whole + extra do
           match Table.random_key tbl pick_rng with
           | Some key -> (
               match Table.find tbl key with
               | Some r -> announce r
               | None -> ())
           | None -> ()
         done)
  in

  let samples = ref [] (* (sim time, live words), newest first *) in
  let (_ : unit -> bool) =
    Engine.every engine ~period:sample_period (fun engine ->
        samples :=
          (Engine.now engine, Memprobe.live_words_major ()) :: !samples)
  in

  Base.start base;
  let wall0 = Unix.gettimeofday () in
  Engine.run ~until:duration engine;
  let wall_s = Unix.gettimeofday () -. wall0 in

  let all = List.rev !samples in
  let window = List.filter (fun (t, _) -> t >= warmup) all in
  (match window with
  | [] | [ _ ] -> failwith "soak: not enough post-warmup samples"
  | _ -> ());
  let slope, mean_words = fit window in
  let t_first = fst (List.hd window) in
  let t_last = List.fold_left (fun _ (t, _) -> t) t_first window in
  let span = t_last -. t_first in
  (* drift over the whole measurement window, as a fraction of the
     mean live heap: scale-free, so quick and full share the gate *)
  let drift = slope *. span /. mean_words in
  let live_end = Table.live_count (Base.table base) in
  let pass = Float.abs drift <= drift_tolerance in

  Printf.printf "soak %s: %d keys target, ttl %.0f s, %.0f s simulated\n"
    (if q then "quick" else "full")
    keys_target ttl duration;
  Printf.printf
    "  live heap %.2f MB mean over [%.0f, %.0f] s  (%d samples)\n"
    (float_of_int (Memprobe.words_to_bytes 1) *. mean_words /. 1e6)
    t_first t_last (List.length window);
  Printf.printf "  slope %+.1f words/s  drift %+.4f of mean over %.0f s\n"
    slope drift span;
  Printf.printf
    "  live keys at end %d  false expiries %d  stale purged %d  (%.1f s wall)\n"
    live_end (Base.false_expiries base) (Base.stale_purged base) wall_s;
  Printf.printf "  heap flatness gate (|drift| <= %.2f): %s\n" drift_tolerance
    (if pass then "OK" else "FAIL");

  let out = if q then "BENCH_soak_quick.json" else "BENCH_soak.json" in
  let oc = open_out out in
  output_string oc
    (Json.obj
       [
         ("mode", Json.string (if q then "quick" else "full"));
         ("keys_target", Json.int keys_target);
         ("ttl_s", Json.float ttl);
         ("duration_s", Json.float duration);
         ("warmup_s", Json.float warmup);
         ("refresh_gap_s", Json.float refresh_gap);
         ("expiry_multiple", Json.float multiple);
         ("sample_period_s", Json.float sample_period);
         ("samples", Json.int (List.length window));
         ("mean_live_words", Json.float mean_words);
         ("slope_words_per_s", Json.float slope);
         ("drift_fraction", Json.float drift);
         ("drift_tolerance", Json.float drift_tolerance);
         ("live_keys_end", Json.int live_end);
         ("false_expiries", Json.int (Base.false_expiries base));
         ("stale_purged", Json.int (Base.stale_purged base));
         ("consistency_avg",
          Json.float (Consistency.average tracker ~now:duration));
         ("wall_s", Json.float wall_s);
         ("gate", Json.string (if pass then "pass" else "fail"));
         ("sample_t", Json.list (List.map (fun (t, _) -> Json.float t) all));
         ("sample_words",
          Json.list (List.map (fun (_, w) -> Json.int w) all));
       ]);
  output_string oc "\n";
  close_out oc;
  Printf.printf "  wrote %s\n%!" out;
  if not pass then exit 1

(* Soft state rides out a network partition (§2: robustness of
   announce/listen).

   An SSTP multicast group runs over a binary-tree topology. Mid-run
   the deeper half of the tree is partitioned away: members behind the
   cut stop hearing announcements and their consistency c(t) collapses,
   while members on the source side stay current. When the partition
   heals, no management action is needed — the sender's periodic
   summaries re-advertise the namespace, the cut-off members notice
   their stale digests and repair, and c(t) climbs back to 1. The dip
   and recovery are the whole point: hard state would have needed
   explicit resynchronisation.

   Run with:  dune exec examples/partition_recovery.exe
   Pass a file name to also write the causal JSONL trace for
   obs_analyze_cli:  dune exec examples/partition_recovery.exe -- run.jsonl *)

module Engine = Softstate_sim.Engine
module Net = Softstate_net
module Rng = Softstate_util.Rng
module Obs = Softstate_obs.Obs
module Trace = Softstate_obs.Trace
module Group = Sstp.Group

let bar width v =
  let n = int_of_float (v *. float_of_int width) in
  String.make n '#' ^ String.make (width - n) '.'

let () =
  let trace_out =
    if Array.length Sys.argv > 1 then Some (open_out Sys.argv.(1)) else None
  in
  let obs =
    match trace_out with
    | Some oc -> Obs.create ~trace:(Trace.jsonl_writer (output_string oc)) ()
    | None -> Obs.create ()
  in
  let engine = Engine.create () in
  let topo =
    Net.Topology.kary_tree ~obs ~engine ~rng:(Rng.create 21)
      ~rate_bps:128_000.0
      ~loss:(fun () -> Net.Loss.bernoulli 0.05)
      ~arity:2 ~depth:2 ()
  in
  (* Nodes 3-6 are the leaves of the depth-2 tree; cutting them away
     severs four of the six members from the sender at node 0. *)
  let cut_group = [ 3; 4; 5; 6 ] in
  let schedule =
    [ { Net.Fault.at = 40.0; action = Net.Fault.Partition cut_group };
      { Net.Fault.at = 80.0; action = Net.Fault.Heal } ]
  in
  Net.Fault.install topo schedule;
  let config =
    { (Group.default_config ~mu_total_bps:128_000.0) with
      Group.summary_period = 0.5 }
  in
  let group =
    Group.create ~obs
      ~transport:(Net.Topology.transport topo)
      ~engine ~rng:(Rng.create 22) ~config ~members:6 ()
  in
  for i = 0 to 19 do
    Group.publish group
      ~path:(Printf.sprintf "store/item%02d" i)
      ~payload:(Printf.sprintf "value-%d" i)
  done;
  (* Keep the namespace moving so the partitioned members actually
     fall behind rather than coasting on pre-cut state. *)
  let update_rng = Rng.create 23 in
  let (_ : unit -> bool) =
    Engine.every engine ~period:2.0 (fun e ->
        if Engine.now e < 120.0 then begin
          let i = Rng.int update_rng 20 in
          Group.publish group
            ~path:(Printf.sprintf "store/item%02d" i)
            ~payload:(Printf.sprintf "value-%d@%.0f" i (Engine.now e))
        end)
  in
  Printf.printf
    "SSTP group of 6 over a binary tree; nodes %s cut away 40s-80s\n\n"
    (String.concat "," (List.map string_of_int cut_group));
  Printf.printf "%6s  %-40s %6s %6s\n" "t" "mean c(t)" "mean" "min";
  let (_ : unit -> bool) =
    Engine.every engine ~period:5.0 (fun e ->
        let mean = Group.consistency group in
        let min_c = Group.min_consistency group in
        Printf.printf "%5.0fs  %s %6.3f %6.3f%s\n" (Engine.now e)
          (bar 40 mean) mean min_c
          (match Engine.now e with
          | t when t = 40.0 -> "   <- partition"
          | t when t = 80.0 -> "   <- heal"
          | _ -> ""))
  in
  Engine.run ~until:140.0 engine;
  Printf.printf
    "\nfinal: mean=%.3f min=%.3f converged=%b  (fault transitions=%d, \
     packets destroyed=%d)\n"
    (Group.consistency group)
    (Group.min_consistency group)
    (Group.converged group)
    (Net.Topology.fault_transitions topo)
    (Net.Topology.fault_drops topo);
  match trace_out with
  | Some oc ->
      close_out oc;
      Printf.printf "trace written to %s (analyse with obs_analyze_cli)\n"
        Sys.argv.(1)
  | None -> ()
